"""The Monte-Carlo fault-injection campaign driver.

Methodology (paper §IV-C):

* the binary is profiled once to count dynamic instructions and find which
  of them produce a register output;
* each trial draws faults from a pluggable **fault model** (see
  :mod:`repro.faults.models`): the default ``reg-bit`` model picks a random
  output-producing dynamic instruction, a random output register (ours have
  at most one), and a random bit to flip — the paper's model, with its RNG
  stream frozen so historical results reproduce;
* plain binaries (NOED) receive exactly one fault per trial.  Protected
  binaries are larger, so — to keep the *error rate* fixed — each of their
  trials receives ``Binomial(dyn_protected, 1 / dyn_reference)`` faults
  (resampled to be at least one), where ``dyn_reference`` is the original
  binary's dynamic instruction count;
* the run is classified against the golden run (see
  :mod:`repro.faults.classify`), each detected trial additionally records
  its **detection latency** (dynamic instructions from injection to the
  ``CHKBR`` firing), and a watchdog bounds runaway executions.

Trials execute on the sequential reference interpreter: outcome
classification depends only on architectural state, and the interpreter
sustains millions of instructions per second, which makes 300-trial
campaigns cheap.

Campaigns are *sharded*: the trial budget is split into fixed
:data:`~repro.parallel.SHARD_TRIALS`-sized shards and every shard draws
from its own RNG stream, seeded by ``(seed, shard_index)``.  The shard
plan depends only on the trial count — never on the worker count — so a
campaign's outcome counts are bit-identical for a given seed whether it
runs serially (``jobs=1``) or fanned out over a process pool
(``jobs=N``).  See ``docs/performance.md``.

Sharding also buys **resilience** (``docs/fault_injection.md``):

* a ``checkpoint`` file records every completed shard as an appended JSONL
  line; ``resume=True`` skips the recorded shards, and because each shard's
  RNG stream is self-contained the merged result is bit-identical to an
  uninterrupted run;
* a shard whose pool worker dies is retried with backoff on a fresh
  worker; when a shard exhausts its retries the campaign degrades
  gracefully — surviving shards are merged, the lost trial count is
  logged, and the result is marked ``partial`` instead of raising.
"""

from __future__ import annotations

import hashlib
import logging
import os
import statistics
import time
from bisect import bisect_right
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.errors import SimError
from repro.faults.checkpoint import CampaignCheckpoint
from repro.faults.classify import (
    OUTCOME_ORDER,
    Outcome,
    classify,
    detection_latency,
)
from repro.faults.models import DEFAULT_FAULT_MODEL, get_fault_model
from repro.ir.interp import (
    ConvergenceIndex,
    FaultSpec,
    Interpreter,
    RunResult,
    Snapshot,
)
from repro.ir.printer import canonical_program_text
from repro.ir.program import Program
from repro.isa.registers import RegClass
from repro.obs import Telemetry, get_telemetry
from repro.obs.progress import ProgressCallback, ProgressTracker
from repro.parallel import (
    SHARD_TRIALS,
    PickledOnce,
    ensure_pool,
    parallel_map,
    plan_shards,
    plan_task_groups,
    resolve_jobs,
    worker_cached,
)
from repro.sim.batch import BatchRunner, GroupStats, TrialPlan
from repro.sim.shared import SharedSnapshots
from repro.utils.rng import make_rng

logger = logging.getLogger(__name__)

#: Per-trial completion callback: ``(outcome, n_faults, detection_latency)``.
OnTrial = Callable[[Outcome, int, int | None], None]

#: Watchdog budget = factor x golden dynamic instruction count.
WATCHDOG_FACTOR = 25

#: Default number of golden-run snapshots a checkpointing injector records.
#: Each trial resumes from the nearest snapshot at or before its earliest
#: fault, so the expected skipped prefix per trial is
#: ``~(1 - 1/(2*count))`` of the fault position; 64 keeps the residual
#: prefix under 1% of the golden run while the snapshots themselves stay a
#: few MB for our workloads.
SNAPSHOT_COUNT = 64

#: Skip checkpointing entirely below this golden dynamic-instruction count —
#: tiny programs replay faster than they restore.
SNAPSHOT_MIN_DYN = 2_000

#: Minimum seconds of estimated work per pool task: shards are grouped into
#: tasks until each task carries at least this much, so cheap (batched)
#: shards stop paying one IPC round trip each.  The *shard* stays the RNG
#: and checkpoint unit — grouping never changes which stream a trial draws
#: from (see docs/performance.md, "Adaptive task sizing").
MIN_TASK_SECONDS = 0.25

#: Default extra attempts for a shard whose pool worker died.
SHARD_RETRIES = 2

#: Default seconds of backoff between shard retry rounds (scaled by round).
SHARD_RETRY_BACKOFF = 0.5


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one campaign shard (the unit of checkpointing/retry)."""

    index: int
    trials: int
    counts: dict[Outcome, int]
    faults: int
    #: Detection latency (dyn instructions, injection -> CHKBR) of every
    #: detected trial in the shard, in trial order.
    latencies: tuple[int, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "shard": self.index,
            "trials": self.trials,
            "counts": {o.value: n for o, n in self.counts.items()},
            "faults": self.faults,
            "latencies": list(self.latencies),
        }

    @classmethod
    def from_json(cls, rec: dict[str, Any]) -> "ShardResult":
        return cls(
            index=int(rec["shard"]),
            trials=int(rec["trials"]),
            counts={Outcome(k): int(v) for k, v in rec["counts"].items()},
            faults=int(rec["faults"]),
            latencies=tuple(int(v) for v in rec.get("latencies", ())),
        )


@dataclass
class CampaignResult:
    """Aggregated outcome counts of one campaign.

    ``trials`` counts the trials that actually completed.  A campaign that
    lost shards to unrecoverable worker crashes is ``partial``: its
    fractions are still well-defined (they divide by the completed count)
    but cover ``lost_trials`` fewer trials than requested.
    """

    trials: int
    counts: dict[Outcome, int] = field(default_factory=dict)
    total_faults_injected: int = 0
    golden_dyn: int = 0
    fault_model: str = DEFAULT_FAULT_MODEL
    detection_latency_sum: int = 0
    detections_timed: int = 0
    lost_trials: int = 0
    partial: bool = False

    def fraction(self, outcome: Outcome) -> float:
        return self.counts.get(outcome, 0) / self.trials if self.trials else 0.0

    @property
    def coverage(self) -> float:
        """Everything that is not silent corruption or a hang.

        An empty campaign (``trials == 0``) covers nothing — 0.0, not the
        1.0 that "no observed SDC" would naively suggest.
        """
        if not self.trials:
            return 0.0
        return 1.0 - self.fraction(Outcome.SDC) - self.fraction(Outcome.TIMEOUT)

    @property
    def caught(self) -> float:
        """Detected plus exceptions.

        The paper reports exceptions separately "for clarity" but notes
        they are usually counted as detected (a custom handler catches
        them, §IV-C) — this is that combined number.
        """
        return self.fraction(Outcome.DETECTED) + self.fraction(Outcome.EXCEPTION)

    @property
    def mean_detection_latency(self) -> float:
        """Mean dynamic instructions from injection to the check firing."""
        if not self.detections_timed:
            return 0.0
        return self.detection_latency_sum / self.detections_timed

    def as_row(self) -> dict[str, float]:
        row = {o.value: self.fraction(o) for o in OUTCOME_ORDER}
        row["coverage"] = self.coverage
        return row

    def merged(self, other: "CampaignResult") -> "CampaignResult":
        """Combine outcome counts of two campaigns over the *same* binary.

        Merging is only well-defined for shards of one campaign (or repeat
        campaigns) against the same golden run and fault model: a mismatch
        means the results came from different experiments, whose fractions
        are not comparable, so that is an error rather than a silent
        keep-mine.
        """
        if self.golden_dyn != other.golden_dyn:
            raise ValueError(
                "cannot merge campaigns over different binaries: "
                f"golden_dyn {self.golden_dyn} != {other.golden_dyn}"
            )
        if self.fault_model != other.fault_model:
            raise ValueError(
                "cannot merge campaigns under different fault models: "
                f"{self.fault_model} != {other.fault_model}"
            )
        counts = dict(self.counts)
        for k, v in other.counts.items():
            counts[k] = counts.get(k, 0) + v
        return CampaignResult(
            trials=self.trials + other.trials,
            counts=counts,
            total_faults_injected=self.total_faults_injected
            + other.total_faults_injected,
            golden_dyn=self.golden_dyn,
            fault_model=self.fault_model,
            detection_latency_sum=self.detection_latency_sum
            + other.detection_latency_sum,
            detections_timed=self.detections_timed + other.detections_timed,
            lost_trials=self.lost_trials + other.lost_trials,
            partial=self.partial or other.partial,
        )


@dataclass(frozen=True)
class WorkerProfile:
    """A parent injector's profiling results, packaged for pool workers.

    Everything :class:`FaultInjector` computes by *executing* the program —
    the golden run, its wall cost, and the architectural snapshots — so a
    worker-side rebuild only re-decodes the program (the compiled closures
    don't pickle) and skips both golden replays.  Snapshots travel as a
    :class:`~repro.sim.shared.SharedSnapshots` shared-memory handle, never
    as pickled register/memory arrays.
    """

    golden: RunResult
    golden_run_seconds: float
    snapshots: SharedSnapshots | None


class CampaignWorkerSpec:
    """A content-addressed recipe for building a campaign injector in a worker.

    ``key`` digests everything the built injector depends on (canonical
    program text, geometry, fault model, resolved backend, snapshot
    config), so :func:`repro.parallel.worker_cached` can reuse one injector
    across every task — of every map — that shares the key.  ``payload``
    is pickled once in the parent (:class:`~repro.parallel.PickledOnce`):
    tasks ship the same immutable bytes, and a worker whose cache already
    holds ``key`` never even unpickles them.
    """

    __slots__ = ("key", "payload")

    def __init__(self, key: str, payload: PickledOnce) -> None:
        self.key = key
        self.payload = payload

    def build(self) -> "FaultInjector":
        # The init span marks worker-cache misses on each worker's trace
        # lane: with the persistent pool it appears once per (workload,
        # scheme) per worker, not once per map.
        with get_telemetry().span("worker:init", cat="worker") as sp:
            ctor_args, profile = self.payload.load()
            (
                program, mem_words, frame_words, fault_model,
                backend, snapshots, snapshot_count,
            ) = ctor_args
            injector = FaultInjector(
                program, mem_words=mem_words, frame_words=frame_words,
                fault_model=fault_model, backend=backend,
                snapshots=snapshots, snapshot_count=snapshot_count,
                profile=profile,
            )
            sp.set(fault_model=fault_model, snapshots=snapshots)
        return injector

    def __getstate__(self) -> tuple[str, PickledOnce]:
        return (self.key, self.payload)

    def __setstate__(self, state: tuple[str, PickledOnce]) -> None:
        self.key, self.payload = state


class FaultInjector:
    """Profile once, inject many times."""

    def __init__(
        self,
        program: Program,
        mem_words: int | None = None,
        frame_words: int = 0,
        fault_model: str = DEFAULT_FAULT_MODEL,
        backend: str | None = None,
        snapshots: bool = True,
        snapshot_count: int = SNAPSHOT_COUNT,
        profile: WorkerProfile | None = None,
    ) -> None:
        # Kept so campaign shards can rebuild an identical injector inside
        # pool workers (the interpreter's compiled closures don't pickle).
        self._ctor_args = (
            program, mem_words, frame_words, fault_model,
            backend, snapshots, snapshot_count,
        )
        self.program = program
        tel = get_telemetry()
        if profile is not None:
            # Worker-side rebuild from a shipped profile: decode the program
            # but adopt the parent's golden run and attach its snapshots
            # from shared memory instead of re-executing anything.
            with tel.span("worker:attach-profile", cat="worker") as sp:
                self.interp = Interpreter(
                    program, mem_words=mem_words, frame_words=frame_words,
                    backend=backend,
                )
                self.golden: RunResult = profile.golden
                self.golden_run_seconds = profile.golden_run_seconds
                if not self.golden.block_trace:
                    raise SimError("shipped golden profile carries no trace")
                self._snapshots: list[Snapshot] = (
                    list(profile.snapshots.load())
                    if profile.snapshots is not None
                    else []
                )
                self._snap_keys: list[int] = [s.dyn for s in self._snapshots]
                sp.set(
                    golden_dyn=self.golden.dyn_instructions,
                    snapshots=len(self._snapshots),
                )
        else:
            # The profile span covers program decode (the compiled backend's
            # superblock generation happens in the interpreter constructor)
            # plus the golden run — in a pool worker this is the per-worker
            # cost the worker cache exists to amortize away.
            with tel.span(
                "injector:profile", cat="campaign", timer="campaign.profile.seconds"
            ) as sp:
                self.interp = Interpreter(
                    program, mem_words=mem_words, frame_words=frame_words,
                    backend=backend,
                )
                t0 = time.perf_counter()
                self.golden = self.interp.run(record_trace=True)
                #: Wall cost of one fault-free execution — the calibration
                #: input for adaptive pool task sizing
                #: (estimated_shard_seconds).
                self.golden_run_seconds = time.perf_counter() - t0
                if not self.golden.block_trace:
                    raise SimError("profiling run produced no trace")
                sp.set(golden_dyn=self.golden.dyn_instructions)

            # Checkpointed injection: replay the golden run once more,
            # recording architectural snapshots at ~snapshot_count evenly
            # spaced points.  Each trial then restores the nearest snapshot
            # at or before its earliest fault and executes only the suffix —
            # bit-identical to a replay from zero, because the pre-fault
            # prefix of every trial *is* the golden execution.
            self._snapshots = []
            self._snap_keys = []
            golden_dyn = self.golden.dyn_instructions
            if snapshots and snapshot_count > 0 and golden_dyn >= SNAPSHOT_MIN_DYN:
                with tel.span(
                    "injector:snapshots", cat="campaign",
                    timer="campaign.snapshot_record.seconds",
                ) as sp:
                    interval = max(1, golden_dyn // snapshot_count)
                    self.interp.run(
                        snapshot_every=interval, snapshot_sink=self._snapshots
                    )
                    self._snap_keys = [s.dyn for s in self._snapshots]
                    sp.set(snapshots=len(self._snapshots))

        # Per-block static tables.
        func = program.main
        self._block_len: dict[str, int] = {}
        self._block_dest_positions: dict[str, npt.NDArray[np.int64]] = {}
        self._block_dest_is_pr: dict[str, npt.NDArray[np.bool_]] = {}
        for block in func.blocks():
            positions: list[int] = []
            is_pr: list[bool] = []
            for i, insn in enumerate(block.instructions):
                if insn.dests:
                    positions.append(i)
                    is_pr.append(insn.dests[0].rclass is RegClass.PR)
            self._block_len[block.label] = len(block.instructions)
            self._block_dest_positions[block.label] = np.array(positions, dtype=np.int64)
            self._block_dest_is_pr[block.label] = np.array(is_pr, dtype=bool)

        # Per-visit cumulative tables over the golden trace.
        trace = self.golden.block_trace
        lens = np.array([self._block_len[lb] for lb in trace], dtype=np.int64)
        dests = np.array(
            [len(self._block_dest_positions[lb]) for lb in trace], dtype=np.int64
        )
        self._visit_dyn_start: npt.NDArray[np.int64] = np.concatenate(
            ([0], np.cumsum(lens)[:-1])
        )
        self._visit_dest_cum: npt.NDArray[np.int64] = np.cumsum(dests)
        self.n_dest_sites = int(self._visit_dest_cum[-1]) if len(trace) else 0
        self._trace: list[str] = trace
        self.max_steps: int = (
            self.golden.dyn_instructions * WATCHDOG_FACTOR + 10_000
        )

        self.fault_model = fault_model
        self.model = get_fault_model(fault_model)
        self.model.prepare(self)
        self._batch_runner: BatchRunner | None = None
        self._converge_index: ConvergenceIndex | None = None
        self._worker_spec: CampaignWorkerSpec | None = None
        #: Parent-side keepalive for exported shared-memory snapshots —
        #: workers attach by name, and the segment is unlinked when this
        #: handle (i.e. the injector) is collected.
        self._shared_snapshots: SharedSnapshots | None = (
            profile.snapshots if profile is not None else None
        )

    # -- batched execution -------------------------------------------------------
    def resolve_batch(self, batch: bool | None = None) -> bool:
        """Resolve a ``batch`` choice: explicit arg > ``REPRO_BATCH`` > default.

        The default is on for the compiled backend (batching is its
        amortization layer) and off for interp, which stays the scalar
        differential oracle.  Results are bit-identical either way.
        """
        if batch is None:
            env = os.environ.get("REPRO_BATCH", "").strip().lower()
            if env:
                batch = env not in ("0", "false", "no", "off")
            else:
                batch = self.interp.backend == "compiled"
        return bool(batch)

    def batch_runner(self) -> BatchRunner:
        """The (lazily built) batched group runner over this golden run.

        The injector owns the :class:`ConvergenceIndex` (per-snapshot state
        hashes) and hands the same handle to every runner it builds, so a
        runner rebuild never re-hashes the snapshots.
        """
        if self._batch_runner is None:
            if self._converge_index is None and self._snapshots:
                self._converge_index = ConvergenceIndex(
                    self._snapshots, self.golden
                )
            self._batch_runner = BatchRunner(
                self.interp,
                self.golden,
                self._snapshots,
                self._visit_dyn_start,
                self.max_steps,
                converge=self._converge_index,
            )
        return self._batch_runner

    def estimated_shard_seconds(self, batch: bool) -> float:
        """Calibrated wall-cost estimate of one full campaign shard.

        Derived from the measured golden-run cost: a scalar trial resumes
        from the nearest snapshot and executes on average about half the
        program (the whole program without snapshots); a batched trial
        amortizes the prefix and usually early-exits at the next snapshot
        boundary, costing a small fraction of a golden run.  Only used to
        size pool tasks — never affects results.
        """
        golden = max(self.golden_run_seconds, 1e-6)
        if batch and self._snapshots:
            per_trial = golden * 0.05
        elif self._snapshots:
            per_trial = golden * 0.6
        else:
            per_trial = golden
        return SHARD_TRIALS * per_trial

    def worker_spec(self) -> CampaignWorkerSpec:
        """The content-addressed build recipe pool workers cache this injector by.

        Memoized: the snapshots are exported to shared memory and the
        constructor payload pickled exactly once per injector, no matter
        how many campaigns, dispatch waves, or retry rounds ship it.  The
        key hashes the *resolved* backend (not the ``None`` the caller may
        have passed) so a worker rebuild can never resolve differently
        from the parent.
        """
        if self._worker_spec is None:
            (
                program, mem_words, frame_words, fault_model,
                _backend, snapshots, snapshot_count,
            ) = self._ctor_args
            digest = hashlib.sha256()
            digest.update(canonical_program_text(program).encode())
            digest.update(
                repr((
                    mem_words, frame_words, fault_model, self.interp.backend,
                    snapshots, snapshot_count, len(self._snapshots),
                )).encode()
            )
            shared = (
                SharedSnapshots.export(self._snapshots)
                if self._snapshots
                else None
            )
            self._shared_snapshots = shared
            profile = WorkerProfile(
                golden=self.golden,
                golden_run_seconds=self.golden_run_seconds,
                snapshots=shared,
            )
            ctor_args = (
                program, mem_words, frame_words, fault_model,
                self.interp.backend, snapshots, snapshot_count,
            )
            self._worker_spec = CampaignWorkerSpec(
                digest.hexdigest(), PickledOnce((ctor_args, profile))
            )
        return self._worker_spec

    # -- fault-site enumeration ----------------------------------------------
    def site_of(self, dyn_index: int) -> tuple[str, int]:
        """Map a dynamic fault position back to its static fault site.

        Returns ``(block label, instruction index within the block)`` of
        the golden instruction committing at ``dyn_index`` — the inverse
        of :meth:`sample_fault`'s site -> ``dyn_index`` mapping.  This is
        how the static coverage prover (:mod:`repro.analysis.coverage`)
        attributes a measured trial outcome to the per-site verdict it
        cross-validates against.
        """
        if dyn_index < 0 or dyn_index >= self.golden.dyn_instructions:
            raise SimError(
                f"dyn_index {dyn_index} outside the golden run "
                f"(0..{self.golden.dyn_instructions - 1})"
            )
        visit = (
            int(np.searchsorted(self._visit_dyn_start, dyn_index, side="right"))
            - 1
        )
        label = self._trace[visit]
        return label, dyn_index - int(self._visit_dyn_start[visit])

    def visit_counts(self) -> dict[str, int]:
        """Golden execution count of every block (static-site weights)."""
        counts: dict[str, int] = {}
        for label in self._trace:
            counts[label] = counts.get(label, 0) + 1
        return counts

    # -- sampling ------------------------------------------------------------
    def sample_fault(self, rng: np.random.Generator) -> FaultSpec:
        """Uniformly pick an output-producing dynamic instruction + bit.

        This is the frozen ``reg-bit`` sampling path: its RNG draw sequence
        must never change, or default campaigns stop reproducing historical
        results (treat any change like a cache-version bump).
        """
        if self.n_dest_sites == 0:
            raise SimError("program has no output-producing instructions")
        site = int(rng.integers(self.n_dest_sites))
        visit = int(np.searchsorted(self._visit_dest_cum, site, side="right"))
        label = self._trace[visit]
        prior = int(self._visit_dest_cum[visit - 1]) if visit else 0
        within = site - prior
        pos = int(self._block_dest_positions[label][within])
        dyn_index = int(self._visit_dyn_start[visit]) + pos
        if self._block_dest_is_pr[label][within]:
            bit = 0  # predicate registers invert regardless of bit
        else:
            bit = int(rng.integers(64))
        return FaultSpec(dyn_index=dyn_index, bit=bit)

    def faults_for_trial(
        self, rng: np.random.Generator, reference_dyn: int | None
    ) -> tuple[FaultSpec, ...]:
        """One fault, or rate-matched faults when ``reference_dyn`` is given."""
        sample = self.model.sample
        if reference_dyn is None or reference_dyn >= self.golden.dyn_instructions:
            return (sample(self, rng),)
        p = 1.0 / reference_dyn
        n = 0
        while n == 0:
            n = int(rng.binomial(self.golden.dyn_instructions, p))
        return tuple(sample(self, rng) for _ in range(n))

    # -- the campaign -----------------------------------------------------------
    def _snapshot_for(self, faults: tuple[FaultSpec, ...]) -> Snapshot | None:
        """Nearest golden snapshot at or before the earliest fault, if any.

        A fault at ``dyn_index`` fires once ``dyn_index + 1`` instructions
        have committed, so any snapshot with ``dyn <= dyn_index`` is safe.
        """
        if not self._snap_keys:
            return None
        first = min(f.dyn_index for f in faults)
        i = bisect_right(self._snap_keys, first) - 1
        return self._snapshots[i] if i >= 0 else None

    def run_trial(self, faults: tuple[FaultSpec, ...]) -> Outcome:
        result = self.interp.run(
            faults=faults,
            max_steps=self.max_steps,
            resume_from=self._snapshot_for(faults) if faults else None,
        )
        return classify(self.golden, result)

    def run_shard(
        self,
        shard_index: int,
        shard_trials: int,
        seed: int,
        reference_dyn: int | None = None,
        on_trial: OnTrial | None = None,
        batch: bool | None = None,
    ) -> ShardResult:
        """Run one campaign shard.

        The shard's RNG stream is fully determined by ``(seed,
        shard_index)``, so shards can execute in any order, in any process,
        and still reproduce the same outcomes — the property checkpoint
        resume and crash retry both lean on.  ``on_trial(outcome, n_faults,
        latency)`` fires after every trial (serial mode uses it for
        per-trial telemetry and progress heartbeats; ``latency`` is ``None``
        for non-detected trials).

        ``batch`` selects the batched group engine (:mod:`repro.sim.batch`):
        faults for every trial are pre-drawn in trial order from the same
        RNG stream (executions never consume RNG, so the draw sequence is
        untouched), trials run grouped by shared golden prefix, and
        classification / latency / ``on_trial`` still happen in trial order
        — the shard's :class:`ShardResult` is bit-identical either way.
        """
        if self.resolve_batch(batch):
            return self._run_shard_batched(
                shard_index, shard_trials, seed, reference_dyn, on_trial
            )
        tel = get_telemetry()
        rng = make_rng(seed, "fault-campaign", shard_index)
        counts: dict[Outcome, int] = {}
        total_faults = 0
        restores = 0
        skipped = 0
        latencies: list[int] = []
        # One span and one batch of counter updates per *shard*: telemetry
        # must never flush per trial (the batching contract worker capture
        # relies on — see docs/observability.md).
        with tel.span(
            "shard", cat="campaign", timer="campaign.shard.seconds",
            shard=shard_index, trials=shard_trials,
        ) as sp:
            for _ in range(shard_trials):
                faults = self.faults_for_trial(rng, reference_dyn)
                total_faults += len(faults)
                snap = self._snapshot_for(faults)
                if snap is not None:
                    restores += 1
                    skipped += snap.dyn
                result = self.interp.run(
                    faults=faults, max_steps=self.max_steps, resume_from=snap
                )
                outcome = classify(self.golden, result)
                counts[outcome] = counts.get(outcome, 0) + 1
                latency = detection_latency(result, faults)
                if latency is not None:
                    latencies.append(latency)
                if on_trial is not None:
                    on_trial(outcome, len(faults), latency)
            if restores:
                tel.count("campaign.snapshot_restores", restores)
                tel.count("campaign.cycles_skipped", skipped)
            sp.set(faults=total_faults, restores=restores, skipped_dyn=skipped)
        return ShardResult(
            index=shard_index,
            trials=shard_trials,
            counts=counts,
            faults=total_faults,
            latencies=tuple(latencies),
        )

    def _run_shard_batched(
        self,
        shard_index: int,
        shard_trials: int,
        seed: int,
        reference_dyn: int | None,
        on_trial: OnTrial | None,
    ) -> ShardResult:
        """Batched variant of :meth:`run_shard` — same contract, same bits.

        The RNG draws happen up front in trial order (bit-identical to the
        scalar loop, which also draws before executing and never consumes
        RNG during a run); execution is then free to proceed in group
        order.  Results are re-emitted in trial order so outcome counts,
        the latency tuple, and ``on_trial`` callbacks are indistinguishable
        from the scalar path.
        """
        tel = get_telemetry()
        rng = make_rng(seed, "fault-campaign", shard_index)
        plans: list[TrialPlan] = []
        total_faults = 0
        for t in range(shard_trials):
            faults = self.faults_for_trial(rng, reference_dyn)
            total_faults += len(faults)
            plans.append(TrialPlan(index=t, faults=faults))

        runner = self.batch_runner()
        results: dict[int, RunResult] = {}
        stats = GroupStats()
        counts: dict[Outcome, int] = {}
        latencies: list[int] = []
        with tel.span(
            "shard", cat="campaign", timer="campaign.shard.seconds",
            shard=shard_index, trials=shard_trials, batch=True,
        ) as sp:
            for group in runner.plan(plans):
                # One span per *group*, not per trial: batch lanes in the
                # Chrome trace show the shared-prefix amortization without
                # breaking the per-shard telemetry batching contract.
                with tel.span(
                    "batch:group", cat="batch", snap=group.snap_index,
                    trials=len(group.trials),
                ):
                    runner.run_group(
                        group,
                        lambda plan, result: results.__setitem__(
                            plan.index, result
                        ),
                        stats,
                    )
            for plan in plans:
                result = results[plan.index]
                outcome = classify(self.golden, result)
                counts[outcome] = counts.get(outcome, 0) + 1
                latency = detection_latency(result, plan.faults)
                if latency is not None:
                    latencies.append(latency)
                if on_trial is not None:
                    on_trial(outcome, len(plan.faults), latency)
            if stats.restores:
                tel.count("campaign.snapshot_restores", stats.restores)
                tel.count("campaign.cycles_skipped", stats.skipped_dyn)
            tel.count("campaign.batch_groups", stats.groups)
            tel.count("campaign.batch_trials", shard_trials)
            tel.count("campaign.batch_converged", stats.converged)
            tel.count("campaign.batch_golden_dyn", stats.golden_advanced)
            tel.count("campaign.batch_guided_visits", stats.guided_visits)
            sp.set(
                faults=total_faults, groups=stats.groups,
                restores=stats.restores, skipped_dyn=stats.skipped_dyn,
                converged=stats.converged, guided=stats.guided_visits,
            )
        return ShardResult(
            index=shard_index,
            trials=shard_trials,
            counts=counts,
            faults=total_faults,
            latencies=tuple(latencies),
        )

    def run_campaign(
        self,
        trials: int,
        seed: int,
        reference_dyn: int | None = None,
        progress: ProgressCallback | None = None,
        heartbeat: int = 25,
        jobs: int | None = 1,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        retries: int = SHARD_RETRIES,
        retry_backoff: float = SHARD_RETRY_BACKOFF,
        shard_timeout: float | None = None,
        batch: bool | None = None,
    ) -> CampaignResult:
        """Run ``trials`` Monte-Carlo trials and aggregate the outcomes.

        The campaign is split into fixed-size shards (see
        :data:`repro.parallel.SHARD_TRIALS`); ``jobs`` controls how many
        run concurrently (1 = in-process serial, 0 = all cores).  Outcome
        counts are identical for a given seed regardless of ``jobs``.

        ``checkpoint`` names a JSONL file that records every completed
        shard as it lands; ``resume=True`` loads it first and skips the
        recorded shards, yielding counts bit-identical to an uninterrupted
        run (``docs/fault_injection.md`` documents the format).  With
        ``jobs > 1``, a shard whose worker dies is retried up to
        ``retries`` times with backoff on a fresh worker; a shard that
        exhausts its retries is *dropped* — the campaign merges the
        surviving shards, logs the loss, and returns a ``partial`` result
        (the lost shards stay absent from the checkpoint, so a later
        ``resume`` retries exactly those).  ``shard_timeout`` (seconds,
        pool mode only) additionally arms the hung-worker watchdog: a pool
        task running past it is killed and retried on the same budget (see
        :func:`repro.parallel.parallel_map`).

        ``progress`` (if given) receives a
        :class:`~repro.obs.progress.ProgressEvent` — completed trials,
        throughput, ETA, outcome counts so far — every ``heartbeat`` trials
        and once at the end; with ``jobs > 1`` heartbeats aggregate across
        workers at shard granularity.  With telemetry enabled the whole
        campaign is a ``campaign`` span, detection latencies feed the
        ``campaign.detection_latency`` histogram, and in serial mode every
        trial additionally emits one instant event carrying its outcome
        and fault count.

        ``batch`` selects the batched group engine for each shard (``None``
        resolves via ``REPRO_BATCH`` and the backend default — see
        :meth:`resolve_batch`); outcome counts are bit-identical either
        way.
        """
        tel = get_telemetry()
        jobs = resolve_jobs(jobs)
        batch = self.resolve_batch(batch)
        shard_plan = plan_shards(trials, SHARD_TRIALS)
        counts: dict[Outcome, int] = {}
        state = {"faults": 0, "latency_sum": 0, "latency_n": 0}
        tracker = ProgressTracker(trials, progress, every=heartbeat)

        ckpt: CampaignCheckpoint | None = None
        done: dict[int, ShardResult] = {}
        if checkpoint is not None:
            ckpt = CampaignCheckpoint(
                checkpoint,
                header={
                    "seed": seed,
                    "trials": trials,
                    "fault_model": self.fault_model,
                    "golden_dyn": self.golden.dyn_instructions,
                    "shard_trials": SHARD_TRIALS,
                    "reference_dyn": reference_dyn,
                },
            )
            done = {
                index: ShardResult.from_json(rec)
                for index, rec in ckpt.load(resume).items()
                if index < len(shard_plan)
            }

        def absorb(sr: ShardResult, fresh: bool) -> None:
            """Merge one shard; persist it when freshly computed."""
            for o, n in sr.counts.items():
                counts[o] = counts.get(o, 0) + n
            state["faults"] += sr.faults
            state["latency_sum"] += sum(sr.latencies)
            state["latency_n"] += len(sr.latencies)
            for v in sr.latencies:
                tel.observe("campaign.detection_latency", v)
            if fresh and ckpt is not None:
                ckpt.append(sr.to_json())
            tel.event(
                "shard-done", shard=sr.index, trials=sr.trials,
                faults=sr.faults, fresh=fresh,
                outcomes={o.value: n for o, n in sr.counts.items()},
            )
            if progress is not None:
                tracker.advance(sr.trials, {o.value: n for o, n in counts.items()})

        lost_shards: list[int] = []
        tel.event(
            "campaign-start", trials=trials, seed=seed, jobs=jobs,
            shards=len(shard_plan), fault_model=self.fault_model,
            resumed_shards=len(done), batch=batch,
        )
        with tel.span(
            "campaign", cat="campaign", timer="campaign.seconds",
            trials=trials, seed=seed, jobs=jobs, shards=len(shard_plan),
            fault_model=self.fault_model, resumed_shards=len(done),
            golden_dyn=self.golden.dyn_instructions, batch=batch,
        ) as sp:
            for index in sorted(done):
                absorb(done[index], fresh=False)
            remaining = [
                (index, n) for index, n in enumerate(shard_plan) if index not in done
            ]
            if jobs <= 1 or len(remaining) <= 1:
                self._run_shards_serial(
                    remaining, seed, reference_dyn, tracker, counts, tel,
                    state, ckpt, progress_on=progress is not None,
                    batch=batch,
                )
            else:
                self._run_shards_pool(
                    remaining, seed, reference_dyn, jobs, absorb, lost_shards,
                    retries=retries, retry_backoff=retry_backoff,
                    shard_timeout=shard_timeout, batch=batch,
                )
            lost_trials = sum(shard_plan[index] for index in lost_shards)
            completed = sum(counts.values())
            if lost_trials:
                logger.warning(
                    "campaign lost %d trial(s) across %d shard(s) to "
                    "unrecoverable worker crashes; returning partial result "
                    "(%d/%d trials)",
                    lost_trials, len(lost_shards), completed, trials,
                )
                tel.count("campaign.lost_trials", lost_trials)
            tel.count("campaign.trials", completed)
            tel.count("campaign.faults_injected", state["faults"])
            for o, n in counts.items():
                tel.count(f"campaign.outcome.{o.value}", n)
            sp.set(
                faults=state["faults"], lost_trials=lost_trials,
                **{f"outcome_{o.value}": n for o, n in counts.items()},
            )
        tel.event(
            "campaign-end", trials=completed, faults=state["faults"],
            lost_trials=lost_trials,
            outcomes={o.value: n for o, n in counts.items()},
        )
        return CampaignResult(
            trials=completed,
            counts=counts,
            total_faults_injected=state["faults"],
            golden_dyn=self.golden.dyn_instructions,
            fault_model=self.fault_model,
            detection_latency_sum=state["latency_sum"],
            detections_timed=state["latency_n"],
            lost_trials=lost_trials,
            partial=lost_trials > 0,
        )

    def _run_shards_serial(
        self,
        remaining: list[tuple[int, int]],
        seed: int,
        reference_dyn: int | None,
        tracker: ProgressTracker,
        counts: dict[Outcome, int],
        tel: Telemetry,
        state: dict[str, int],
        ckpt: CampaignCheckpoint | None,
        progress_on: bool,
        batch: bool = False,
    ) -> None:
        """In-process shard loop with per-trial telemetry + heartbeats.

        Outcome counts and progress heartbeats are applied trial by trial
        (so heartbeats land mid-shard); the shard's fault total, latency
        histogram entries, and checkpoint record land once the shard
        completes.
        """
        emit_trials = tel.enabled and tel.tracer is not None
        trial_index = 0

        for shard_index, shard_trials in remaining:

            def on_trial(
                outcome: Outcome, n_faults: int, latency: int | None
            ) -> None:
                nonlocal trial_index
                counts[outcome] = counts.get(outcome, 0) + 1
                if emit_trials:
                    tel.instant(
                        "trial", cat="campaign", index=trial_index,
                        outcome=outcome.value, faults=n_faults,
                    )
                trial_index += 1
                if progress_on:
                    tracker.step({o.value: n for o, n in counts.items()})

            sr = self.run_shard(
                shard_index, shard_trials, seed, reference_dyn,
                on_trial=on_trial, batch=batch,
            )
            state["faults"] += sr.faults
            state["latency_sum"] += sum(sr.latencies)
            state["latency_n"] += len(sr.latencies)
            for v in sr.latencies:
                tel.observe("campaign.detection_latency", v)
            if ckpt is not None:
                ckpt.append(sr.to_json())
            tel.event(
                "shard-done", shard=sr.index, trials=sr.trials,
                faults=sr.faults, fresh=True,
                outcomes={o.value: n for o, n in sr.counts.items()},
            )

    def _run_shards_pool(
        self,
        remaining: list[tuple[int, int]],
        seed: int,
        reference_dyn: int | None,
        jobs: int,
        absorb: Callable[[ShardResult, bool], None],
        lost_shards: list[int],
        retries: int,
        retry_backoff: float,
        shard_timeout: float | None = None,
        batch: bool = False,
    ) -> None:
        """Fan shards out over a process pool; merge as they complete.

        Dispatch happens in two waves over one :func:`ensure_pool` scope
        (reusing an ambient :class:`~repro.parallel.WorkerPool` when the
        caller installed one — CLI, serve, bench — and spawning exactly
        once otherwise):

        1. a *calibration* wave of up to ``jobs`` single-shard tasks, whose
           measured wall cost replaces the golden-run-derived estimate;
        2. the rest, grouped by :func:`~repro.parallel.plan_task_groups`
           around the **median measured** per-shard cost (see
           :data:`MIN_TASK_SECONDS`), so dispatch granularity tracks what
           shards actually cost on this machine rather than a static
           guess.

        Grouping and wave boundaries only decide *dispatch*; the shard
        remains the RNG / checkpoint / retry-accounting unit — a lost task
        reports every shard it carried, and results are bit-identical for
        any grouping.  Workers build (or fetch from their content-addressed
        cache) the injector from :meth:`worker_spec`, so profiling happens
        at most once per worker per (program, scheme) — not per task.
        """
        spec = self.worker_spec()
        measured: list[float] = []

        def run_wave(
            shards: list[tuple[int, int]], groups: list[range]
        ) -> None:
            tasks = [
                (spec, [shards[i] for i in g], seed, reference_dyn, batch)
                for g in groups
            ]

            def on_result(
                index: int, payload: tuple[float, list[ShardResult]]
            ) -> None:
                elapsed, srs = payload
                if srs:
                    measured.append(elapsed / len(srs))
                for sr in srs:
                    absorb(sr, fresh=True)

            def on_failure(index: int, exc: BaseException) -> None:
                for i in groups[index]:
                    shard_index = shards[i][0]
                    logger.warning("shard %d lost: %s", shard_index, exc)
                    get_telemetry().event(
                        "shard-lost", shard=shard_index, error=str(exc)
                    )
                    lost_shards.append(shard_index)

            parallel_map(
                _campaign_task_worker,
                tasks,
                jobs=jobs,
                on_result=on_result,
                retries=retries,
                retry_backoff=retry_backoff,
                timeout=shard_timeout,
                on_failure=on_failure,
            )

        with ensure_pool(jobs):
            first = min(jobs, len(remaining))
            run_wave(
                remaining[:first], [range(i, i + 1) for i in range(first)]
            )
            rest = remaining[first:]
            if rest:
                est = (
                    statistics.median(measured)
                    if measured
                    else self.estimated_shard_seconds(batch)
                )
                run_wave(
                    rest,
                    plan_task_groups(
                        len(rest), est, jobs, min_task_seconds=MIN_TASK_SECONDS
                    ),
                )


def _campaign_task_worker(
    task: tuple[CampaignWorkerSpec, list[tuple[int, int]], int, int | None, bool],
) -> tuple[float, list[ShardResult]]:
    """Run a cost-calibrated group of shards in one pool dispatch.

    The injector comes from the worker-resident content-addressed cache:
    the first task per (program, scheme) on a worker builds it from the
    spec's shipped profile (decode only — no golden replays), every later
    task reuses it.  Returns the wall seconds spent alongside the shard
    results so the parent can calibrate adaptive task sizing.
    """
    from repro.chaos import chaos_point

    spec, shards, seed, reference_dyn, batch = task
    injector: FaultInjector = worker_cached(spec.key, spec.build)
    out: list[ShardResult] = []
    t0 = time.perf_counter()
    for shard_index, shard_trials in shards:
        chaos_point("worker.shard")
        out.append(
            injector.run_shard(
                shard_index, shard_trials, seed, reference_dyn, batch=batch
            )
        )
    return (time.perf_counter() - t0, out)


def run_campaign(
    program: Program,
    trials: int,
    seed: int,
    mem_words: int | None = None,
    frame_words: int = 0,
    reference_dyn: int | None = None,
    progress: ProgressCallback | None = None,
    heartbeat: int = 25,
    jobs: int | None = 1,
    fault_model: str = DEFAULT_FAULT_MODEL,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    backend: str | None = None,
    snapshots: bool = True,
    shard_timeout: float | None = None,
    batch: bool | None = None,
) -> CampaignResult:
    """Convenience wrapper: profile + campaign in one call."""
    injector = FaultInjector(
        program, mem_words=mem_words, frame_words=frame_words,
        fault_model=fault_model, backend=backend, snapshots=snapshots,
    )
    return injector.run_campaign(
        trials, seed, reference_dyn=reference_dyn,
        progress=progress, heartbeat=heartbeat, jobs=jobs,
        checkpoint=checkpoint, resume=resume,
        shard_timeout=shard_timeout, batch=batch,
    )
