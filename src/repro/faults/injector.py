"""The Monte-Carlo fault-injection campaign driver.

Methodology (paper §IV-C):

* the binary is profiled once to count dynamic instructions and find which
  of them produce a register output;
* each trial picks a random output-producing dynamic instruction, a random
  output register (ours have at most one), and a random bit to flip;
* plain binaries (NOED) receive exactly one flip per trial.  Protected
  binaries are larger, so — to keep the *error rate* fixed — each of their
  trials receives ``Binomial(dyn_protected, 1 / dyn_reference)`` flips
  (resampled to be at least one), where ``dyn_reference`` is the original
  binary's dynamic instruction count;
* the run is classified against the golden run (see
  :mod:`repro.faults.classify`); a watchdog bounds runaway executions.

Trials execute on the sequential reference interpreter: outcome
classification depends only on architectural state, and the interpreter
sustains millions of instructions per second, which makes 300-trial
campaigns cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimError
from repro.faults.classify import OUTCOME_ORDER, Outcome, classify
from repro.ir.interp import FaultSpec, Interpreter, RunResult
from repro.ir.program import Program
from repro.isa.registers import RegClass
from repro.obs import get_telemetry
from repro.obs.progress import ProgressCallback, ProgressTracker
from repro.utils.rng import make_rng

#: Watchdog budget = factor x golden dynamic instruction count.
WATCHDOG_FACTOR = 25


@dataclass
class CampaignResult:
    """Aggregated outcome counts of one campaign."""

    trials: int
    counts: dict[Outcome, int] = field(default_factory=dict)
    total_faults_injected: int = 0
    golden_dyn: int = 0

    def fraction(self, outcome: Outcome) -> float:
        return self.counts.get(outcome, 0) / self.trials if self.trials else 0.0

    @property
    def coverage(self) -> float:
        """Everything that is not silent corruption or a hang."""
        return 1.0 - self.fraction(Outcome.SDC) - self.fraction(Outcome.TIMEOUT)

    @property
    def caught(self) -> float:
        """Detected plus exceptions.

        The paper reports exceptions separately "for clarity" but notes
        they are usually counted as detected (a custom handler catches
        them, §IV-C) — this is that combined number.
        """
        return self.fraction(Outcome.DETECTED) + self.fraction(Outcome.EXCEPTION)

    def as_row(self) -> dict[str, float]:
        row = {o.value: self.fraction(o) for o in OUTCOME_ORDER}
        row["coverage"] = self.coverage
        return row

    def merged(self, other: "CampaignResult") -> "CampaignResult":
        counts = dict(self.counts)
        for k, v in other.counts.items():
            counts[k] = counts.get(k, 0) + v
        return CampaignResult(
            trials=self.trials + other.trials,
            counts=counts,
            total_faults_injected=self.total_faults_injected
            + other.total_faults_injected,
            golden_dyn=self.golden_dyn,
        )


class FaultInjector:
    """Profile once, inject many times."""

    def __init__(
        self,
        program: Program,
        mem_words: int | None = None,
        frame_words: int = 0,
    ) -> None:
        self.interp = Interpreter(program, mem_words=mem_words, frame_words=frame_words)
        self.golden: RunResult = self.interp.run(record_trace=True)
        if not self.golden.block_trace:
            raise SimError("profiling run produced no trace")

        # Per-block static tables.
        func = program.main
        self._block_len: dict[str, int] = {}
        self._block_dest_positions: dict[str, np.ndarray] = {}
        self._block_dest_is_pr: dict[str, np.ndarray] = {}
        for block in func.blocks():
            positions = []
            is_pr = []
            for i, insn in enumerate(block.instructions):
                if insn.dests:
                    positions.append(i)
                    is_pr.append(insn.dests[0].rclass is RegClass.PR)
            self._block_len[block.label] = len(block.instructions)
            self._block_dest_positions[block.label] = np.array(positions, dtype=np.int64)
            self._block_dest_is_pr[block.label] = np.array(is_pr, dtype=bool)

        # Per-visit cumulative tables over the golden trace.
        trace = self.golden.block_trace
        lens = np.array([self._block_len[lb] for lb in trace], dtype=np.int64)
        dests = np.array(
            [len(self._block_dest_positions[lb]) for lb in trace], dtype=np.int64
        )
        self._visit_dyn_start = np.concatenate(([0], np.cumsum(lens)[:-1]))
        self._visit_dest_cum = np.cumsum(dests)
        self.n_dest_sites = int(self._visit_dest_cum[-1]) if len(trace) else 0
        self._trace = trace
        self.max_steps = self.golden.dyn_instructions * WATCHDOG_FACTOR + 10_000

    # -- sampling ------------------------------------------------------------
    def sample_fault(self, rng: np.random.Generator) -> FaultSpec:
        """Uniformly pick an output-producing dynamic instruction + bit."""
        if self.n_dest_sites == 0:
            raise SimError("program has no output-producing instructions")
        site = int(rng.integers(self.n_dest_sites))
        visit = int(np.searchsorted(self._visit_dest_cum, site, side="right"))
        label = self._trace[visit]
        prior = int(self._visit_dest_cum[visit - 1]) if visit else 0
        within = site - prior
        pos = int(self._block_dest_positions[label][within])
        dyn_index = int(self._visit_dyn_start[visit]) + pos
        if self._block_dest_is_pr[label][within]:
            bit = 0  # predicate registers invert regardless of bit
        else:
            bit = int(rng.integers(64))
        return FaultSpec(dyn_index=dyn_index, bit=bit)

    def faults_for_trial(
        self, rng: np.random.Generator, reference_dyn: int | None
    ) -> tuple[FaultSpec, ...]:
        """One flip, or rate-matched flips when ``reference_dyn`` is given."""
        if reference_dyn is None or reference_dyn >= self.golden.dyn_instructions:
            return (self.sample_fault(rng),)
        p = 1.0 / reference_dyn
        n = 0
        while n == 0:
            n = int(rng.binomial(self.golden.dyn_instructions, p))
        return tuple(self.sample_fault(rng) for _ in range(n))

    # -- the campaign -----------------------------------------------------------
    def run_trial(self, faults: tuple[FaultSpec, ...]) -> Outcome:
        result = self.interp.run(faults=faults, max_steps=self.max_steps)
        return classify(self.golden, result)

    def run_campaign(
        self,
        trials: int,
        seed: int,
        reference_dyn: int | None = None,
        progress: ProgressCallback | None = None,
        heartbeat: int = 25,
    ) -> CampaignResult:
        """Run ``trials`` Monte-Carlo trials and aggregate the outcomes.

        ``progress`` (if given) receives a
        :class:`~repro.obs.progress.ProgressEvent` — completed trials,
        throughput, ETA, outcome counts so far — every ``heartbeat`` trials
        and once at the end.  With telemetry enabled the whole campaign is a
        ``campaign`` span and every trial emits one instant event carrying
        its outcome and fault count.
        """
        tel = get_telemetry()
        rng = make_rng(seed, "fault-campaign")
        counts: dict[Outcome, int] = {}
        total_faults = 0
        tracker = ProgressTracker(trials, progress, every=heartbeat)
        emit_trials = tel.enabled and tel.tracer is not None
        with tel.span(
            "campaign", cat="campaign", timer="campaign.seconds",
            trials=trials, seed=seed,
            golden_dyn=self.golden.dyn_instructions,
        ) as sp:
            for trial in range(trials):
                faults = self.faults_for_trial(rng, reference_dyn)
                total_faults += len(faults)
                outcome = self.run_trial(faults)
                counts[outcome] = counts.get(outcome, 0) + 1
                if emit_trials:
                    tel.instant(
                        "trial", cat="campaign", index=trial,
                        outcome=outcome.value, faults=len(faults),
                    )
                if progress is not None:
                    tracker.step({o.value: n for o, n in counts.items()})
            tel.count("campaign.trials", trials)
            tel.count("campaign.faults_injected", total_faults)
            for o, n in counts.items():
                tel.count(f"campaign.outcome.{o.value}", n)
            sp.set(
                faults=total_faults,
                **{f"outcome_{o.value}": n for o, n in counts.items()},
            )
        return CampaignResult(
            trials=trials,
            counts=counts,
            total_faults_injected=total_faults,
            golden_dyn=self.golden.dyn_instructions,
        )


def run_campaign(
    program: Program,
    trials: int,
    seed: int,
    mem_words: int | None = None,
    frame_words: int = 0,
    reference_dyn: int | None = None,
    progress: ProgressCallback | None = None,
    heartbeat: int = 25,
) -> CampaignResult:
    """Convenience wrapper: profile + campaign in one call."""
    injector = FaultInjector(program, mem_words=mem_words, frame_words=frame_words)
    return injector.run_campaign(
        trials, seed, reference_dyn=reference_dyn,
        progress=progress, heartbeat=heartbeat,
    )
