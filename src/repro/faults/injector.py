"""The Monte-Carlo fault-injection campaign driver.

Methodology (paper §IV-C):

* the binary is profiled once to count dynamic instructions and find which
  of them produce a register output;
* each trial picks a random output-producing dynamic instruction, a random
  output register (ours have at most one), and a random bit to flip;
* plain binaries (NOED) receive exactly one flip per trial.  Protected
  binaries are larger, so — to keep the *error rate* fixed — each of their
  trials receives ``Binomial(dyn_protected, 1 / dyn_reference)`` flips
  (resampled to be at least one), where ``dyn_reference`` is the original
  binary's dynamic instruction count;
* the run is classified against the golden run (see
  :mod:`repro.faults.classify`); a watchdog bounds runaway executions.

Trials execute on the sequential reference interpreter: outcome
classification depends only on architectural state, and the interpreter
sustains millions of instructions per second, which makes 300-trial
campaigns cheap.

Campaigns are *sharded*: the trial budget is split into fixed
:data:`~repro.parallel.SHARD_TRIALS`-sized shards and every shard draws
from its own RNG stream, seeded by ``(seed, shard_index)``.  The shard
plan depends only on the trial count — never on the worker count — so a
campaign's outcome counts are bit-identical for a given seed whether it
runs serially (``jobs=1``) or fanned out over a process pool
(``jobs=N``).  See ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimError
from repro.faults.classify import OUTCOME_ORDER, Outcome, classify
from repro.ir.interp import FaultSpec, Interpreter, RunResult
from repro.ir.program import Program
from repro.isa.registers import RegClass
from repro.obs import get_telemetry
from repro.obs.progress import ProgressCallback, ProgressTracker
from repro.parallel import SHARD_TRIALS, parallel_map, plan_shards, resolve_jobs
from repro.utils.rng import make_rng

#: Watchdog budget = factor x golden dynamic instruction count.
WATCHDOG_FACTOR = 25


@dataclass
class CampaignResult:
    """Aggregated outcome counts of one campaign."""

    trials: int
    counts: dict[Outcome, int] = field(default_factory=dict)
    total_faults_injected: int = 0
    golden_dyn: int = 0

    def fraction(self, outcome: Outcome) -> float:
        return self.counts.get(outcome, 0) / self.trials if self.trials else 0.0

    @property
    def coverage(self) -> float:
        """Everything that is not silent corruption or a hang."""
        return 1.0 - self.fraction(Outcome.SDC) - self.fraction(Outcome.TIMEOUT)

    @property
    def caught(self) -> float:
        """Detected plus exceptions.

        The paper reports exceptions separately "for clarity" but notes
        they are usually counted as detected (a custom handler catches
        them, §IV-C) — this is that combined number.
        """
        return self.fraction(Outcome.DETECTED) + self.fraction(Outcome.EXCEPTION)

    def as_row(self) -> dict[str, float]:
        row = {o.value: self.fraction(o) for o in OUTCOME_ORDER}
        row["coverage"] = self.coverage
        return row

    def merged(self, other: "CampaignResult") -> "CampaignResult":
        """Combine outcome counts of two campaigns over the *same* binary.

        Merging is only well-defined for shards of one campaign (or repeat
        campaigns) against the same golden run: a ``golden_dyn`` mismatch
        means the results came from different binaries, whose fractions are
        not comparable, so that is an error rather than a silent keep-mine.
        """
        if self.golden_dyn != other.golden_dyn:
            raise ValueError(
                "cannot merge campaigns over different binaries: "
                f"golden_dyn {self.golden_dyn} != {other.golden_dyn}"
            )
        counts = dict(self.counts)
        for k, v in other.counts.items():
            counts[k] = counts.get(k, 0) + v
        return CampaignResult(
            trials=self.trials + other.trials,
            counts=counts,
            total_faults_injected=self.total_faults_injected
            + other.total_faults_injected,
            golden_dyn=self.golden_dyn,
        )


class FaultInjector:
    """Profile once, inject many times."""

    def __init__(
        self,
        program: Program,
        mem_words: int | None = None,
        frame_words: int = 0,
    ) -> None:
        # Kept so campaign shards can rebuild an identical injector inside
        # pool workers (the interpreter's compiled closures don't pickle).
        self._ctor_args = (program, mem_words, frame_words)
        self.interp = Interpreter(program, mem_words=mem_words, frame_words=frame_words)
        self.golden: RunResult = self.interp.run(record_trace=True)
        if not self.golden.block_trace:
            raise SimError("profiling run produced no trace")

        # Per-block static tables.
        func = program.main
        self._block_len: dict[str, int] = {}
        self._block_dest_positions: dict[str, np.ndarray] = {}
        self._block_dest_is_pr: dict[str, np.ndarray] = {}
        for block in func.blocks():
            positions = []
            is_pr = []
            for i, insn in enumerate(block.instructions):
                if insn.dests:
                    positions.append(i)
                    is_pr.append(insn.dests[0].rclass is RegClass.PR)
            self._block_len[block.label] = len(block.instructions)
            self._block_dest_positions[block.label] = np.array(positions, dtype=np.int64)
            self._block_dest_is_pr[block.label] = np.array(is_pr, dtype=bool)

        # Per-visit cumulative tables over the golden trace.
        trace = self.golden.block_trace
        lens = np.array([self._block_len[lb] for lb in trace], dtype=np.int64)
        dests = np.array(
            [len(self._block_dest_positions[lb]) for lb in trace], dtype=np.int64
        )
        self._visit_dyn_start = np.concatenate(([0], np.cumsum(lens)[:-1]))
        self._visit_dest_cum = np.cumsum(dests)
        self.n_dest_sites = int(self._visit_dest_cum[-1]) if len(trace) else 0
        self._trace = trace
        self.max_steps = self.golden.dyn_instructions * WATCHDOG_FACTOR + 10_000

    # -- sampling ------------------------------------------------------------
    def sample_fault(self, rng: np.random.Generator) -> FaultSpec:
        """Uniformly pick an output-producing dynamic instruction + bit."""
        if self.n_dest_sites == 0:
            raise SimError("program has no output-producing instructions")
        site = int(rng.integers(self.n_dest_sites))
        visit = int(np.searchsorted(self._visit_dest_cum, site, side="right"))
        label = self._trace[visit]
        prior = int(self._visit_dest_cum[visit - 1]) if visit else 0
        within = site - prior
        pos = int(self._block_dest_positions[label][within])
        dyn_index = int(self._visit_dyn_start[visit]) + pos
        if self._block_dest_is_pr[label][within]:
            bit = 0  # predicate registers invert regardless of bit
        else:
            bit = int(rng.integers(64))
        return FaultSpec(dyn_index=dyn_index, bit=bit)

    def faults_for_trial(
        self, rng: np.random.Generator, reference_dyn: int | None
    ) -> tuple[FaultSpec, ...]:
        """One flip, or rate-matched flips when ``reference_dyn`` is given."""
        if reference_dyn is None or reference_dyn >= self.golden.dyn_instructions:
            return (self.sample_fault(rng),)
        p = 1.0 / reference_dyn
        n = 0
        while n == 0:
            n = int(rng.binomial(self.golden.dyn_instructions, p))
        return tuple(self.sample_fault(rng) for _ in range(n))

    # -- the campaign -----------------------------------------------------------
    def run_trial(self, faults: tuple[FaultSpec, ...]) -> Outcome:
        result = self.interp.run(faults=faults, max_steps=self.max_steps)
        return classify(self.golden, result)

    def run_shard(
        self,
        shard_index: int,
        shard_trials: int,
        seed: int,
        reference_dyn: int | None = None,
        on_trial=None,
    ) -> tuple[dict[Outcome, int], int]:
        """Run one campaign shard; returns ``(outcome counts, faults injected)``.

        The shard's RNG stream is fully determined by ``(seed,
        shard_index)``, so shards can execute in any order, in any process,
        and still reproduce the same outcomes.  ``on_trial(outcome,
        n_faults)`` fires after every trial (serial mode uses it for
        per-trial telemetry and progress heartbeats).
        """
        rng = make_rng(seed, "fault-campaign", shard_index)
        counts: dict[Outcome, int] = {}
        total_faults = 0
        for _ in range(shard_trials):
            faults = self.faults_for_trial(rng, reference_dyn)
            total_faults += len(faults)
            outcome = self.run_trial(faults)
            counts[outcome] = counts.get(outcome, 0) + 1
            if on_trial is not None:
                on_trial(outcome, len(faults))
        return counts, total_faults

    def run_campaign(
        self,
        trials: int,
        seed: int,
        reference_dyn: int | None = None,
        progress: ProgressCallback | None = None,
        heartbeat: int = 25,
        jobs: int | None = 1,
    ) -> CampaignResult:
        """Run ``trials`` Monte-Carlo trials and aggregate the outcomes.

        The campaign is split into fixed-size shards (see
        :data:`repro.parallel.SHARD_TRIALS`); ``jobs`` controls how many
        run concurrently (1 = in-process serial, 0 = all cores).  Outcome
        counts are identical for a given seed regardless of ``jobs``.

        ``progress`` (if given) receives a
        :class:`~repro.obs.progress.ProgressEvent` — completed trials,
        throughput, ETA, outcome counts so far — every ``heartbeat`` trials
        and once at the end; with ``jobs > 1`` heartbeats aggregate across
        workers at shard granularity.  With telemetry enabled the whole
        campaign is a ``campaign`` span, and in serial mode every trial
        additionally emits one instant event carrying its outcome and
        fault count.
        """
        tel = get_telemetry()
        jobs = resolve_jobs(jobs)
        shard_plan = plan_shards(trials, SHARD_TRIALS)
        counts: dict[Outcome, int] = {}
        total_faults = 0
        tracker = ProgressTracker(trials, progress, every=heartbeat)
        with tel.span(
            "campaign", cat="campaign", timer="campaign.seconds",
            trials=trials, seed=seed, jobs=jobs, shards=len(shard_plan),
            golden_dyn=self.golden.dyn_instructions,
        ) as sp:
            if jobs <= 1 or len(shard_plan) <= 1:
                total_faults = self._run_shards_serial(
                    shard_plan, seed, reference_dyn, tracker, counts, tel,
                    progress_on=progress is not None,
                )
            else:
                total_faults = self._run_shards_pool(
                    shard_plan, seed, reference_dyn, tracker, counts, jobs,
                    progress_on=progress is not None,
                )
            tel.count("campaign.trials", trials)
            tel.count("campaign.faults_injected", total_faults)
            for o, n in counts.items():
                tel.count(f"campaign.outcome.{o.value}", n)
            sp.set(
                faults=total_faults,
                **{f"outcome_{o.value}": n for o, n in counts.items()},
            )
        return CampaignResult(
            trials=trials,
            counts=counts,
            total_faults_injected=total_faults,
            golden_dyn=self.golden.dyn_instructions,
        )

    def _run_shards_serial(
        self, shard_plan, seed, reference_dyn, tracker, counts, tel,
        progress_on: bool,
    ) -> int:
        """In-process shard loop with per-trial telemetry + heartbeats."""
        emit_trials = tel.enabled and tel.tracer is not None
        total_faults = 0
        trial_index = 0

        for shard_index, shard_trials in enumerate(shard_plan):

            def on_trial(outcome: Outcome, n_faults: int) -> None:
                nonlocal trial_index
                counts[outcome] = counts.get(outcome, 0) + 1
                if emit_trials:
                    tel.instant(
                        "trial", cat="campaign", index=trial_index,
                        outcome=outcome.value, faults=n_faults,
                    )
                trial_index += 1
                if progress_on:
                    tracker.step({o.value: n for o, n in counts.items()})

            _, faults = self.run_shard(
                shard_index, shard_trials, seed, reference_dyn, on_trial=on_trial
            )
            total_faults += faults
        return total_faults

    def _run_shards_pool(
        self, shard_plan, seed, reference_dyn, tracker, counts, jobs,
        progress_on: bool,
    ) -> int:
        """Fan shards out over a process pool; merge as they complete."""
        program, mem_words, frame_words = self._ctor_args
        tasks = [
            (shard_index, shard_trials, seed, reference_dyn)
            for shard_index, shard_trials in enumerate(shard_plan)
        ]
        total_faults = 0

        def on_result(index: int, result: tuple[dict[Outcome, int], int]) -> None:
            nonlocal total_faults
            shard_counts, faults = result
            for o, n in shard_counts.items():
                counts[o] = counts.get(o, 0) + n
            total_faults += faults
            if progress_on:
                tracker.advance(
                    shard_plan[index], {o.value: n for o, n in counts.items()}
                )

        parallel_map(
            _campaign_shard_worker,
            tasks,
            jobs=jobs,
            initializer=_init_campaign_worker,
            initargs=(program, mem_words, frame_words),
            on_result=on_result,
        )
        return total_faults


#: Per-process injector cache for campaign shard workers: the binary is
#: profiled once per worker, then reused for every shard that lands there.
_worker_injector: FaultInjector | None = None


def _init_campaign_worker(program, mem_words, frame_words) -> None:
    global _worker_injector
    _worker_injector = FaultInjector(
        program, mem_words=mem_words, frame_words=frame_words
    )


def _campaign_shard_worker(task) -> tuple[dict[Outcome, int], int]:
    shard_index, shard_trials, seed, reference_dyn = task
    assert _worker_injector is not None, "worker initializer did not run"
    return _worker_injector.run_shard(
        shard_index, shard_trials, seed, reference_dyn
    )


def run_campaign(
    program: Program,
    trials: int,
    seed: int,
    mem_words: int | None = None,
    frame_words: int = 0,
    reference_dyn: int | None = None,
    progress: ProgressCallback | None = None,
    heartbeat: int = 25,
    jobs: int | None = 1,
) -> CampaignResult:
    """Convenience wrapper: profile + campaign in one call."""
    injector = FaultInjector(program, mem_words=mem_words, frame_words=frame_words)
    return injector.run_campaign(
        trials, seed, reference_dyn=reference_dyn,
        progress=progress, heartbeat=heartbeat, jobs=jobs,
    )
