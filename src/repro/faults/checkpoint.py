"""Crash-resilient campaign checkpoints (JSON-lines, append-only).

A checkpoint file makes an interrupted campaign resumable without losing the
shards already computed.  The format is one JSON object per line:

* line 1 — a **header** identifying the campaign::

      {"format": "repro-campaign-checkpoint", "version": 1,
       "seed": 2013, "trials": 300, "fault_model": "reg-bit",
       "golden_dyn": 123456, "shard_trials": 25, "reference_dyn": null}

* every further line — one **completed shard**::

      {"shard": 3, "trials": 25, "counts": {"detected": 20, ...},
       "faults": 31, "latencies": [44, 1029, ...]}

Shard lines are appended with a single ``write()`` + flush + fsync as each
shard completes, so a crash can lose at most the trailing, partially
written line — which :meth:`CampaignCheckpoint.load` detects, quarantines
to ``<file>.bad`` with one warning, and drops (rewriting the file to the
last good record).  Because every shard draws
from an RNG stream fully determined by ``(seed, shard_index)``, merging the
checkpointed shards with freshly computed ones is bit-identical to an
uninterrupted run at any worker count.

Resuming against a checkpoint whose header does not match the requested
campaign (different seed, trial budget, fault model, binary, or shard size)
raises: silently mixing streams would corrupt the statistics.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.faults.classify import Outcome

logger = logging.getLogger(__name__)

FORMAT_NAME = "repro-campaign-checkpoint"
FORMAT_VERSION = 1

#: Header keys that must match exactly for a resume to be sound.
IDENTITY_KEYS = (
    "seed", "trials", "fault_model", "golden_dyn", "shard_trials",
    "reference_dyn",
)


class CheckpointError(ReproError):
    """Checkpoint file unusable for the requested campaign."""


class CampaignCheckpoint:
    """Reader/writer for one campaign's checkpoint file."""

    def __init__(self, path: str | Path, header: dict[str, Any]) -> None:
        self.path = Path(path)
        self.header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            **{k: header.get(k) for k in IDENTITY_KEYS},
        }

    # -- reading ---------------------------------------------------------------
    def load(self, resume: bool) -> dict[int, dict[str, Any]]:
        """Return completed shards (``index -> shard record``).

        With ``resume=False`` (or no file yet) the file is truncated to a
        fresh header and the result is empty.  With ``resume=True`` the
        existing file is validated against this campaign's identity and its
        intact shard records are returned; a torn trailing line (from a
        crash mid-append) is quarantined to ``<file>.bad`` with one warning
        and the file is healed in place — resume continues from the last
        complete record instead of raising.
        """
        if not resume or not self.path.exists():
            self._rewrite([])
            return {}
        records, torn_line = self._read_records()
        if torn_line is not None:
            self._quarantine_torn(torn_line)
            self._rewrite(list(records.values()))
        return records

    def _quarantine_torn(self, torn_line: str) -> None:
        """Preserve the torn tail as evidence in ``<file>.bad``, warn once."""
        bad = self.path.with_name(f"{self.path.name}.bad")
        try:
            bad.write_text(torn_line + "\n")
        except OSError as exc:  # pragma: no cover - fs permissions
            logger.warning("could not quarantine torn line to %s: %s", bad, exc)
            return
        logger.warning(
            "checkpoint %s has a torn trailing line (crash mid-append); "
            "quarantined it to %s and resuming from the last complete "
            "record", self.path, bad,
        )

    def _read_records(self) -> tuple[dict[int, dict[str, Any]], str | None]:
        lines = self.path.read_text().splitlines()
        if not lines:
            raise CheckpointError(f"checkpoint {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} has a corrupt header: {exc}"
            ) from None
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            raise CheckpointError(f"{self.path} is not a campaign checkpoint")
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has version {header.get('version')}, "
                f"expected {FORMAT_VERSION}"
            )
        for key in IDENTITY_KEYS:
            if header.get(key) != self.header[key]:
                raise CheckpointError(
                    f"checkpoint {self.path} belongs to a different campaign: "
                    f"{key}={header.get(key)!r} != {self.header[key]!r}"
                )
        records: dict[int, dict[str, Any]] = {}
        torn_line: str | None = None
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                index = int(rec["shard"])
                rec["trials"] = int(rec["trials"])
                rec["faults"] = int(rec["faults"])
                rec["counts"] = {
                    str(k): int(v) for k, v in rec["counts"].items()
                }
                rec["latencies"] = [int(v) for v in rec.get("latencies", [])]
            except (ValueError, KeyError, TypeError):
                if lineno == len(lines):
                    torn_line = line  # crash mid-append: quarantine the tail
                    break
                raise CheckpointError(
                    f"checkpoint {self.path} line {lineno} is corrupt"
                ) from None
            # Identical by determinism if duplicated; last write wins.
            records[index] = rec
        for rec in records.values():
            for name in rec["counts"]:
                Outcome(name)  # unknown outcome => stale/foreign file
        return records, torn_line

    # -- writing ---------------------------------------------------------------
    def _rewrite(self, records: list[dict[str, Any]]) -> None:
        """Atomically (re)write header + ``records`` via temp + replace."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w") as f:
                f.write(json.dumps(self.header) + "\n")
                for rec in records:
                    f.write(json.dumps(rec) + "\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one completed-shard record (single atomic write)."""
        line = json.dumps(record) + "\n"
        with open(self.path, "a") as f:
            f.write(line)
            f.flush()
            os.fsync(f.fileno())
