"""Outcome taxonomy for fault-injection trials (paper §IV-C).

1. **Benign** — same output stream and exit code as the golden run;
2. **Detected** — a CASTED/SCED/DCED check fired (``CHKBR`` taken);
3. **Exception** — an architectural trap (invalid address, divide-by-zero);
   the paper reports these separately "for clarity" although a deployed
   system would catch them in a handler;
4. **Data corrupt** (SDC) — the run completed with wrong output/exit code;
5. **Timeout** — the watchdog expired (e.g. a corrupted loop bound).
"""

from __future__ import annotations

import enum

from repro.ir.interp import ExitKind, RunResult


class Outcome(enum.Enum):
    BENIGN = "benign"
    DETECTED = "detected"
    EXCEPTION = "exception"
    SDC = "data-corrupt"
    TIMEOUT = "timeout"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Outcome.{self.name}"


#: Display order used by the figures (matches the paper's stacking).
OUTCOME_ORDER = (
    Outcome.BENIGN,
    Outcome.DETECTED,
    Outcome.EXCEPTION,
    Outcome.SDC,
    Outcome.TIMEOUT,
)


def classify(golden: RunResult, trial: RunResult) -> Outcome:
    """Compare a faulted run against the golden run."""
    if trial.kind is ExitKind.DETECTED:
        return Outcome.DETECTED
    if trial.kind is ExitKind.EXCEPTION:
        return Outcome.EXCEPTION
    if trial.kind is ExitKind.TIMEOUT:
        return Outcome.TIMEOUT
    if trial.output == golden.output and trial.exit_code == golden.exit_code:
        return Outcome.BENIGN
    return Outcome.SDC


def detection_latency(trial: RunResult, faults) -> int | None:
    """Dynamic instructions from the first *applied* fault to detection.

    RepTFD argues detection *latency* matters as much as detection rate: a
    check that fires a million instructions late protects nothing the fault
    already leaked.  Latency is measured from the commit point of the
    earliest fault that actually landed inside the run (a rate-matched trial
    can carry faults past the detection point — those never fired) to the
    ``CHKBR`` that ended it.  ``None`` for non-detected runs or when no
    fault had been applied yet (a spurious check firing).
    """
    if trial.kind is not ExitKind.DETECTED:
        return None
    applied = [f.dyn_index + 1 for f in faults if f.dyn_index < trial.dyn_instructions]
    if not applied:
        return None
    return trial.dyn_instructions - min(applied)
