"""Outcome taxonomy for fault-injection trials (paper §IV-C).

1. **Benign** — same output stream and exit code as the golden run;
2. **Detected** — a CASTED/SCED/DCED check fired (``CHKBR`` taken);
3. **Exception** — an architectural trap (invalid address, divide-by-zero);
   the paper reports these separately "for clarity" although a deployed
   system would catch them in a handler;
4. **Data corrupt** (SDC) — the run completed with wrong output/exit code;
5. **Timeout** — the watchdog expired (e.g. a corrupted loop bound).

This module is the single home of the outcome taxonomy, shared by the
dynamic side (campaign classification, right here) and the static side
(:class:`SiteClass`, the per-site verdicts of the coverage prover in
:mod:`repro.analysis.coverage`).  :data:`SITE_ADMISSIBLE` is the bridge:
for each static verdict, the set of measured outcomes that verdict
permits.  A measured outcome outside its site's admissible set is a
soundness violation — a bug in the prover, a scheme, or the injector —
which the differential gate (``benchmarks/bench_coverage.py``) hunts for.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.ir.interp import ExitKind, FaultSpec, RunResult


class Outcome(enum.Enum):
    BENIGN = "benign"
    DETECTED = "detected"
    EXCEPTION = "exception"
    SDC = "data-corrupt"
    TIMEOUT = "timeout"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Outcome.{self.name}"


#: Display order used by the figures (matches the paper's stacking).
OUTCOME_ORDER = (
    Outcome.BENIGN,
    Outcome.DETECTED,
    Outcome.EXCEPTION,
    Outcome.SDC,
    Outcome.TIMEOUT,
)


class SiteClass(enum.Enum):
    """Static verdict for one fault site (the prover's taxonomy).

    * ``DETECTED`` — on every path, corruption reaches a check comparing a
      tainted original/shadow pair before any store/branch/OUT consumes it
      (and cannot trap first);
    * ``MASKED`` — the corruption is provably dead or overwritten before
      anything reads it;
    * ``SDC_POSSIBLE`` — some path lets a tainted value escape to a store,
      branch, or output unchecked (or trap), so silent corruption cannot
      be ruled out.
    """

    DETECTED = "detected"
    MASKED = "masked"
    SDC_POSSIBLE = "sdc-possible"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SiteClass.{self.name}"


#: Which measured outcomes each static verdict admits.
#:
#: ``DETECTED`` sites may measure benign (logically-masked corruption the
#: static analysis cannot see) or exception (the fault perturbs an address
#: before the check executes) but never silent corruption or a hang;
#: ``MASKED`` sites must measure benign — a detection on a masked site
#: means the prover killed taint it shouldn't have; ``SDC_POSSIBLE`` is
#: the "anything can happen" verdict.
SITE_ADMISSIBLE: dict[SiteClass, frozenset[Outcome]] = {
    SiteClass.DETECTED: frozenset(
        {Outcome.BENIGN, Outcome.DETECTED, Outcome.EXCEPTION}
    ),
    SiteClass.MASKED: frozenset({Outcome.BENIGN}),
    SiteClass.SDC_POSSIBLE: frozenset(OUTCOME_ORDER),
}


def classify(golden: RunResult, trial: RunResult) -> Outcome:
    """Compare a faulted run against the golden run."""
    if trial.kind is ExitKind.DETECTED:
        return Outcome.DETECTED
    if trial.kind is ExitKind.EXCEPTION:
        return Outcome.EXCEPTION
    if trial.kind is ExitKind.TIMEOUT:
        return Outcome.TIMEOUT
    if trial.output == golden.output and trial.exit_code == golden.exit_code:
        return Outcome.BENIGN
    return Outcome.SDC


def detection_latency(
    trial: RunResult, faults: Sequence[FaultSpec]
) -> int | None:
    """Dynamic instructions from the first *applied* fault to detection.

    RepTFD argues detection *latency* matters as much as detection rate: a
    check that fires a million instructions late protects nothing the fault
    already leaked.  Latency is measured from the commit point of the
    earliest fault that actually landed inside the run (a rate-matched trial
    can carry faults past the detection point — those never fired) to the
    ``CHKBR`` that ended it.  ``None`` for non-detected runs or when no
    fault had been applied yet (a spurious check firing).
    """
    if trial.kind is not ExitKind.DETECTED:
        return None
    applied = [f.dyn_index + 1 for f in faults if f.dyn_index < trial.dyn_instructions]
    if not applied:
        return None
    return trial.dyn_instructions - min(applied)
