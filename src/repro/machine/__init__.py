"""Target-machine description: clusters, latencies, caches, issue resources."""

from repro.machine.config import (
    CacheLevelConfig,
    CacheHierarchyConfig,
    MachineConfig,
    itanium2_cache,
    paper_machine,
)
from repro.machine.reservation import ReservationTable

__all__ = [
    "MachineConfig",
    "CacheLevelConfig",
    "CacheHierarchyConfig",
    "itanium2_cache",
    "paper_machine",
    "ReservationTable",
]
