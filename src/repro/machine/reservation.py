"""Issue-slot reservation table.

Shared by the BUG assignment pass (Algorithm 2 reserves the slot it picked)
and by the list scheduler.  A cell counts how many of a cluster's issue slots
are taken in a given cycle; the table grows on demand.
"""

from __future__ import annotations

from repro.errors import ScheduleError


class ReservationTable:
    """Slot occupancy for ``n_clusters`` clusters of ``issue_width`` slots."""

    def __init__(self, n_clusters: int, issue_width: int) -> None:
        if n_clusters < 1 or issue_width < 1:
            raise ScheduleError("reservation table needs positive dimensions")
        self.n_clusters = n_clusters
        self.issue_width = issue_width
        self._used: dict[tuple[int, int], int] = {}

    def used(self, cycle: int, cluster: int) -> int:
        return self._used.get((cycle, cluster), 0)

    def has_free_slot(self, cycle: int, cluster: int) -> bool:
        self._check(cycle, cluster)
        return self.used(cycle, cluster) < self.issue_width

    def free_slots(self, cycle: int, cluster: int) -> int:
        self._check(cycle, cluster)
        return self.issue_width - self.used(cycle, cluster)

    def first_free_cycle(self, cluster: int, from_cycle: int) -> int:
        """Earliest cycle >= ``from_cycle`` with a free slot on ``cluster``."""
        cycle = max(0, from_cycle)
        while not self.has_free_slot(cycle, cluster):
            cycle += 1
        return cycle

    def reserve(self, cycle: int, cluster: int) -> int:
        """Take one slot; returns the slot index within the cycle."""
        self._check(cycle, cluster)
        key = (cycle, cluster)
        slot = self._used.get(key, 0)
        if slot >= self.issue_width:
            raise ScheduleError(
                f"cycle {cycle} cluster {cluster} is full ({self.issue_width} slots)"
            )
        self._used[key] = slot + 1
        return slot

    def _check(self, cycle: int, cluster: int) -> None:
        if cycle < 0:
            raise ScheduleError(f"negative cycle {cycle}")
        if not 0 <= cluster < self.n_clusters:
            raise ScheduleError(f"cluster {cluster} out of range")

    def max_cycle(self) -> int:
        """Highest cycle with any reservation (-1 when empty)."""
        return max((c for c, _ in self._used), default=-1)
