"""Machine configuration (the paper's Table I).

The target is a 2-cluster lockstep VLIW with configurable per-cluster issue
width and inter-cluster register-access delay, a per-cluster register file of
64 GP + 32 PR (the 64 FP registers are unused by the integer workloads), and
the Itanium2 three-level cache hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import MachineConfigError
from repro.isa.opcodes import OP_INFO, LatencyClass, Opcode


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level; sizes in bytes, latency in cycles (total at hit)."""

    name: str
    size_bytes: int
    block_bytes: int
    associativity: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.block_bytes <= 0 or self.associativity <= 0:
            raise MachineConfigError(f"non-positive geometry in {self.name}")
        if self.size_bytes % (self.block_bytes * self.associativity):
            raise MachineConfigError(
                f"{self.name}: size must be a multiple of block*assoc"
            )
        if self.latency <= 0:
            raise MachineConfigError(f"{self.name}: latency must be positive")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.block_bytes * self.associativity)


@dataclass(frozen=True)
class CacheHierarchyConfig:
    """Ordered levels (closest first) plus main-memory latency."""

    levels: tuple[CacheLevelConfig, ...]
    memory_latency: int = 150

    def __post_init__(self) -> None:
        if not self.levels:
            raise MachineConfigError("at least one cache level required")
        for near, far in zip(self.levels, self.levels[1:]):
            if far.latency <= near.latency:
                raise MachineConfigError("cache latencies must increase outward")
        if self.memory_latency <= self.levels[-1].latency:
            raise MachineConfigError("memory latency must exceed last-level cache")


def itanium2_cache() -> CacheHierarchyConfig:
    """Table I: 16K/64B/4-way/1c, 256K/128B/8-way/5c, 3M/128B/12-way/12c, 150c."""
    return CacheHierarchyConfig(
        levels=(
            CacheLevelConfig("L1", 16 * 1024, 64, 4, 1),
            CacheLevelConfig("L2", 256 * 1024, 128, 8, 5),
            CacheLevelConfig("L3", 3 * 1024 * 1024, 128, 12, 12),
        ),
        memory_latency=150,
    )


#: Default cycles for each latency class.  LOAD equals the L1 hit latency;
#: anything slower is charged dynamically by the cache model.
DEFAULT_LATENCIES: dict[LatencyClass, int] = {
    LatencyClass.FAST: 1,
    LatencyClass.MUL: 3,
    LatencyClass.DIV: 12,
    LatencyClass.LOAD: 1,
    LatencyClass.STORE: 1,
    LatencyClass.BRANCH: 1,
}


@dataclass(frozen=True)
class MachineConfig:
    """Full processor configuration.

    ``issue_width`` is *per cluster* and ``inter_cluster_delay`` is the extra
    latency of reading the other cluster's register file — the two knobs the
    paper sweeps (1-4 each).
    """

    n_clusters: int = 2
    issue_width: int = 2
    inter_cluster_delay: int = 1
    gp_per_cluster: int = 64
    pr_per_cluster: int = 32
    latencies: dict[LatencyClass, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES)
    )
    cache: CacheHierarchyConfig = field(default_factory=itanium2_cache)

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise MachineConfigError("need at least one cluster")
        if self.issue_width < 1:
            raise MachineConfigError("issue width must be >= 1")
        if self.inter_cluster_delay < 0:
            raise MachineConfigError("inter-cluster delay must be >= 0")
        if self.gp_per_cluster < 2 or self.pr_per_cluster < 2:
            raise MachineConfigError("register files unrealistically small")
        missing = set(LatencyClass) - set(self.latencies)
        if missing:
            raise MachineConfigError(f"latencies missing for {sorted(missing, key=str)}")
        for lc, cycles in self.latencies.items():
            if cycles < 1:
                raise MachineConfigError(f"latency of {lc} must be >= 1")

    # -- queries ---------------------------------------------------------------
    def latency_of(self, opcode: Opcode) -> int:
        """Static (best-case) latency in cycles of ``opcode``."""
        return self.latencies[OP_INFO[opcode].latency]

    def with_(self, **changes) -> "MachineConfig":
        """Functional update (sweeps mutate issue width / delay a lot)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Human-readable summary (used by the Table I bench)."""
        lines = [
            f"clusters:            {self.n_clusters}",
            f"issue width/cluster: {self.issue_width}",
            f"inter-cluster delay: {self.inter_cluster_delay}",
            f"registers/cluster:   {self.gp_per_cluster} GP, {self.pr_per_cluster} PR",
        ]
        for lvl in self.cache.levels:
            lines.append(
                f"{lvl.name}: {lvl.size_bytes // 1024}KB, {lvl.block_bytes}B blocks, "
                f"{lvl.associativity}-way, {lvl.latency} cycles"
            )
        lines.append(f"memory latency:      {self.cache.memory_latency} cycles")
        return "\n".join(lines)


def paper_machine(issue_width: int = 2, delay: int = 1) -> MachineConfig:
    """The configuration family evaluated in the paper (Figs. 6-10)."""
    return MachineConfig(
        n_clusters=2, issue_width=issue_width, inter_cluster_delay=delay
    )
