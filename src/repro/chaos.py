"""Seeded infrastructure fault injection: SIGKILL a process at a chaos point.

:mod:`repro.faults.injector` flips bits in the *simulated* architecture;
this module does the same to the harness itself.  Instrumented code calls
:func:`chaos_point` at named lifecycle points (``daemon.job-start``,
``daemon.heartbeat``, ``worker.shard``, ...); the ``REPRO_CHAOS``
environment variable arms one or more of them::

    REPRO_CHAOS="daemon.heartbeat:2"            # SIGKILL self on the 2nd
                                                # daemon heartbeat
    REPRO_CHAOS="worker.shard:1:once"           # SIGKILL the first worker
                                                # that starts a shard, once
    REPRO_CHAOS="daemon.job-start:1,worker.shard:3"

Each entry is ``point:nth[:once]`` — the process SIGKILLs *itself* the
``nth`` time it reaches ``point`` (counted per process, so every pool
worker has its own count).  The ``once`` flag makes the kill fire at most
once across *all* processes, coordinated through a flag file named by
``REPRO_CHAOS_FLAG`` (required with ``once``): the first process to reach
the armed point creates the flag and dies; later processes sail through —
that is how a test injects a *transient* crash that retries must survive,
as opposed to a deterministic crasher that must exhaust its budget.

SIGKILL, deliberately: no ``atexit``, no ``finally``, no flush — the
harshest crash the OS can deliver, which is exactly what resume-on-restart
and checkpoint healing claim to survive.  Unarmed (no ``REPRO_CHAOS``),
:func:`chaos_point` is a dictionary lookup and an early return.
"""

from __future__ import annotations

import os
import signal

#: Per-process hit counters, keyed by chaos-point name.
_counts: dict[str, int] = {}


def _parse(raw: str) -> dict[str, tuple[int, bool]]:
    """``point:nth[:once],...`` -> ``{point: (nth, once)}``; bad entries ignored."""
    armed: dict[str, tuple[int, bool]] = {}
    for entry in raw.split(","):
        parts = entry.strip().split(":")
        if len(parts) < 2 or not parts[0]:
            continue
        try:
            nth = int(parts[1])
        except ValueError:
            continue
        if nth < 1:
            continue
        armed[parts[0]] = (nth, len(parts) > 2 and parts[2] == "once")
    return armed


def chaos_point(name: str) -> None:
    """Die here (SIGKILL) if ``REPRO_CHAOS`` armed this point's nth visit."""
    raw = os.environ.get("REPRO_CHAOS")
    if not raw:
        return
    armed = _parse(raw).get(name)
    if armed is None:
        return
    nth, once = armed
    _counts[name] = _counts.get(name, 0) + 1
    if _counts[name] != nth:
        return
    if once:
        flag = os.environ.get("REPRO_CHAOS_FLAG")
        if not flag:
            return  # 'once' without a coordination file: refuse to arm
        try:
            # O_EXCL: exactly one process wins the right to die.
            fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)
