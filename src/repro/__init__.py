"""CASTED reproduction: core-adaptive software transient error detection.

Reproduces Mitropoulou, Porpodas & Cintra, *CASTED: Core-Adaptive Software
Transient Error Detection for Tightly Coupled Cores* (IPDPS-W 2013) as a
self-contained Python system: a compiler mid/back end with the CASTED
error-detection and cluster-assignment passes, a clustered-VLIW cycle-level
simulator with the Itanium2 cache hierarchy, a fault-injection framework,
the seven workloads, and an evaluation harness regenerating every figure
and table of the paper.

Quick start::

    from repro import compile_program, Scheme, MachineConfig, VLIWExecutor
    from repro.workloads import get_workload

    program = get_workload("cjpeg").program
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    compiled = compile_program(program, Scheme.CASTED, machine)
    result = VLIWExecutor(compiled).run()
    print(result.cycles, result.output)
"""

from repro.errors import ReproError
from repro.frontend import compile_source
from repro.ir.interp import ExitKind, FaultSpec, Interpreter, RunResult
from repro.ir.program import GlobalArray, Program
from repro.machine.config import MachineConfig, paper_machine
from repro.passes.checks import CheckPolicy
from repro.pipeline import (
    CompiledProgram,
    Scheme,
    collect_block_profile,
    compile_program,
)
from repro.sim.executor import SimResult, VLIWExecutor
from repro.faults import FaultInjector, Outcome, run_campaign
from repro.eval import Evaluator

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "compile_source",
    "Program",
    "GlobalArray",
    "Interpreter",
    "RunResult",
    "ExitKind",
    "FaultSpec",
    "MachineConfig",
    "paper_machine",
    "Scheme",
    "compile_program",
    "collect_block_profile",
    "CheckPolicy",
    "CompiledProgram",
    "VLIWExecutor",
    "SimResult",
    "FaultInjector",
    "Outcome",
    "run_campaign",
    "Evaluator",
    "__version__",
]
