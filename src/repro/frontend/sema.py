"""Semantic analysis for minic.

Checks performed before code generation:

* unique global / function names; globals have positive sizes and
  initializers that fit;
* ``main`` exists and takes no parameters; ``main`` may only return integer
  literals (the exit code is an immediate of ``HALT``);
* every identifier is declared before use (function-level scoping), no
  redeclarations, assignments only to declared variables / known globals;
* calls name existing functions with matching arity;
* the call graph is acyclic (every call is inlined, so recursion is
  rejected).
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.frontend import ast_nodes as ast

#: Built-in functions lowered directly to ISA operations by codegen.
BUILTINS: dict[str, int] = {"abs": 1, "min": 2, "max": 2}


def analyze(module: ast.Module) -> None:
    """Raise :class:`SemanticError` on the first violation found."""
    globals_: dict[str, ast.GlobalDecl] = {}
    for g in module.globals_:
        if g.name in globals_:
            raise SemanticError(f"duplicate global {g.name!r} (line {g.line})")
        if g.size <= 0:
            raise SemanticError(f"global {g.name!r} has non-positive size")
        if len(g.init) > g.size:
            raise SemanticError(f"global {g.name!r} initializer too long")
        globals_[g.name] = g

    functions: dict[str, ast.FuncDef] = {}
    for f in module.functions:
        if f.name in functions:
            raise SemanticError(f"duplicate function {f.name!r} (line {f.line})")
        if f.name in globals_:
            raise SemanticError(f"{f.name!r} is both a global and a function")
        if f.name in BUILTINS:
            raise SemanticError(
                f"{f.name!r} is a built-in function (line {f.line})"
            )
        if len(set(f.params)) != len(f.params):
            raise SemanticError(f"duplicate parameter in {f.name!r}")
        functions[f.name] = f

    main = functions.get("main")
    if main is None:
        raise SemanticError("no 'main' function")
    if main.params:
        raise SemanticError("'main' takes no parameters")
    if main.is_library:
        raise SemanticError("'main' cannot be a library function")

    for f in functions.values():
        _check_function(f, globals_, functions)

    _check_recursion(functions)


def _check_function(
    f: ast.FuncDef,
    globals_: dict[str, ast.GlobalDecl],
    functions: dict[str, ast.FuncDef],
) -> None:
    declared: set[str] = set(f.params)

    def check_expr(e: ast.Expr) -> None:
        if isinstance(e, ast.IntLit):
            return
        if isinstance(e, ast.VarRef):
            if e.name not in declared:
                raise SemanticError(
                    f"undeclared variable {e.name!r} in {f.name!r} (line {e.line})"
                )
            return
        if isinstance(e, ast.Index):
            if e.array not in globals_:
                raise SemanticError(
                    f"unknown global {e.array!r} in {f.name!r} (line {e.line})"
                )
            check_expr(e.index)
            return
        if isinstance(e, ast.Unary):
            check_expr(e.operand)
            return
        if isinstance(e, ast.Binary):
            check_expr(e.left)
            check_expr(e.right)
            return
        if isinstance(e, ast.Call):
            if e.name in BUILTINS:
                if len(e.args) != BUILTINS[e.name]:
                    raise SemanticError(
                        f"{e.name!r} expects {BUILTINS[e.name]} args, got "
                        f"{len(e.args)} (line {e.line})"
                    )
                for a in e.args:
                    check_expr(a)
                return
            callee = functions.get(e.name)
            if callee is None:
                raise SemanticError(
                    f"call to unknown function {e.name!r} (line {e.line})"
                )
            if callee.name == "main":
                raise SemanticError(f"'main' cannot be called (line {e.line})")
            if len(e.args) != len(callee.params):
                raise SemanticError(
                    f"{e.name!r} expects {len(callee.params)} args, got "
                    f"{len(e.args)} (line {e.line})"
                )
            for a in e.args:
                check_expr(a)
            return
        raise SemanticError(f"unknown expression node {type(e).__name__}")

    def check_stmts(stmts: tuple[ast.Stmt, ...], in_loop: bool) -> None:
        for s in stmts:
            if isinstance(s, ast.VarDecl):
                check_expr(s.init)
                if s.name in declared:
                    raise SemanticError(
                        f"redeclaration of {s.name!r} in {f.name!r} (line {s.line})"
                    )
                declared.add(s.name)
            elif isinstance(s, ast.Assign):
                check_expr(s.value)
                if isinstance(s.target, ast.VarRef):
                    if s.target.name not in declared:
                        raise SemanticError(
                            f"assignment to undeclared {s.target.name!r} "
                            f"(line {s.line})"
                        )
                else:
                    check_expr(s.target)
            elif isinstance(s, ast.If):
                check_expr(s.cond)
                check_stmts(s.then_body, in_loop)
                check_stmts(s.else_body, in_loop)
            elif isinstance(s, ast.While):
                check_expr(s.cond)
                check_stmts(s.body, True)
            elif isinstance(s, ast.For):
                if s.init is not None:
                    check_stmts((s.init,), in_loop)
                if s.cond is not None:
                    check_expr(s.cond)
                check_stmts(s.body, True)
                if s.step is not None:
                    check_stmts((s.step,), True)
            elif isinstance(s, (ast.Break, ast.Continue)):
                if not in_loop:
                    raise SemanticError(
                        f"{type(s).__name__.lower()} outside loop (line {s.line})"
                    )
            elif isinstance(s, ast.Return):
                if s.value is not None:
                    if f.name == "main" and not isinstance(s.value, ast.IntLit):
                        raise SemanticError(
                            "'main' may only return integer literals "
                            f"(line {s.line})"
                        )
                    check_expr(s.value)
            elif isinstance(s, ast.Out):
                check_expr(s.value)
            elif isinstance(s, ast.ExprStmt):
                check_expr(s.expr)
            else:
                raise SemanticError(f"unknown statement node {type(s).__name__}")

    check_stmts(f.body, False)


def _check_recursion(functions: dict[str, ast.FuncDef]) -> None:
    callees: dict[str, set[str]] = {name: set() for name in functions}

    def collect_expr(name: str, e: ast.Expr) -> None:
        if isinstance(e, ast.Call):
            callees[name].add(e.name)
            for a in e.args:
                collect_expr(name, a)
        elif isinstance(e, ast.Unary):
            collect_expr(name, e.operand)
        elif isinstance(e, ast.Binary):
            collect_expr(name, e.left)
            collect_expr(name, e.right)
        elif isinstance(e, ast.Index):
            collect_expr(name, e.index)

    def collect_stmts(name: str, stmts: tuple[ast.Stmt, ...]) -> None:
        for s in stmts:
            for attr in ("init", "value", "cond", "expr"):
                v = getattr(s, attr, None)
                if v is not None and not isinstance(v, (ast.Stmt,)):
                    if isinstance(
                        v, (ast.IntLit, ast.VarRef, ast.Index, ast.Unary, ast.Binary, ast.Call)
                    ):
                        collect_expr(name, v)
            for attr in ("then_body", "else_body", "body"):
                v = getattr(s, attr, None)
                if v:
                    collect_stmts(name, v)
            if isinstance(s, ast.For):
                if s.init is not None:
                    collect_stmts(name, (s.init,))
                if s.step is not None:
                    collect_stmts(name, (s.step,))
            if isinstance(s, ast.Assign):
                if isinstance(s.target, ast.Index):
                    collect_expr(name, s.target.index)

    for name, f in functions.items():
        collect_stmts(name, f.body)

    # DFS cycle detection.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {name: WHITE for name in functions}

    def dfs(name: str, path: list[str]) -> None:
        color[name] = GREY
        path.append(name)
        for c in callees[name]:
            if c not in functions:
                continue  # reported by _check_function
            if color[c] == GREY:
                cycle = " -> ".join(path + [c])
                raise SemanticError(f"recursion is not supported: {cycle}")
            if color[c] == WHITE:
                dfs(c, path)
        path.pop()
        color[name] = BLACK

    for name in functions:
        if color[name] == WHITE:
            dfs(name, [])
