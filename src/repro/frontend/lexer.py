"""minic lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "func", "lib", "global", "var", "if", "else", "while", "for",
        "break", "continue", "return", "out",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||"]
_SINGLE_OPS = "+-*/%&|^~<>!=(){}[],;"


class TokenKind(enum.Enum):
    INT = "int"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}({self.text!r}@{self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise ParseError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if c.isdigit():
            start, start_line, start_col = i, line, col
            if source.startswith("0x", i) or source.startswith("0X", i):
                advance(2)
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    advance(1)
                if i == start + 2:
                    raise ParseError("bad hex literal", start_line, start_col)
            else:
                while i < n and source[i].isdigit():
                    advance(1)
            tokens.append(Token(TokenKind.INT, source[start:i], start_line, start_col))
            continue
        if c.isalpha() or c == "_":
            start, start_line, start_col = i, line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line, col))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if c in _SINGLE_OPS:
            tokens.append(Token(TokenKind.OP, c, line, col))
            advance(1)
            continue
        raise ParseError(f"unexpected character {c!r}", line, col)

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
