"""minic -> IR code generation with full inlining.

Every call site expands the callee's body with a fresh variable environment
(recursion is rejected by sema).  Calls to ``lib func`` definitions — and
anything they call transitively — are emitted inside the builder's library
context, tagging those instructions ``from_library``: the error-detection
pass treats them as binary-only code outside the sphere of replication.

Lowering notes:

* each minic variable gets one virtual register for the whole function, so
  loop-carried updates become ``MOV``s into that register;
* conditions compile through ``gen_cond(expr, Ltrue, Lfalse)`` so
  comparisons and short-circuit ``&&``/``||`` become branches directly;
  in value contexts booleans materialize as 0/1 via ``SELECT``;
* global arrays live at statically known word addresses; ``a[i]`` is one
  ``ADD`` plus the memory access;
* unreachable blocks produced by early exits (``break``/``return``) are
  pruned after generation.
"""

from __future__ import annotations

import itertools

from repro.errors import SemanticError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.ir.builder import IRBuilder
from repro.ir.cfg import CFG
from repro.ir.program import GlobalArray, Program
from repro.ir.verifier import verify_program
from repro.isa.registers import Reg

_CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}
_CMP_GEN = {
    "<": "cmplt", "<=": "cmple", ">": "cmpgt",
    ">=": "cmpge", "==": "cmpeq", "!=": "cmpne",
}
_ARITH_GEN = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and_", "|": "or_", "^": "xor", "<<": "shl", ">>": "shra",
}


class _InlineFrame:
    """Per-inline-instance state: variable env and the return plumbing."""

    __slots__ = ("env", "ret_reg", "ret_label")

    def __init__(self, env: dict[str, Reg], ret_reg: Reg | None, ret_label: str | None):
        self.env = env
        self.ret_reg = ret_reg
        self.ret_label = ret_label


class CodeGenerator:
    def __init__(self, module: ast.Module) -> None:
        self.module = module
        self.functions = {f.name: f for f in module.functions}
        self.builder = IRBuilder("main")
        self._label_counter = itertools.count()
        # Word addresses of globals: identical to Program.layout() on the
        # same declaration order (word 0 is reserved).
        self.global_base: dict[str, int] = {}
        addr = 1
        for g in module.globals_:
            self.global_base[g.name] = addr
            addr += g.size
        self._loop_stack: list[tuple[str, str]] = []  # (continue_to, break_to)

    # -- labels -----------------------------------------------------------------
    def _label(self, kind: str) -> str:
        return f"L{next(self._label_counter)}_{kind}"

    # -- entry point -------------------------------------------------------------
    def compile(self) -> Program:
        b = self.builder
        b.add_and_enter("entry")
        frame = _InlineFrame(env={}, ret_reg=None, ret_label=None)
        fell = self.gen_stmts(self.functions["main"].body, frame)
        if fell:
            b.halt(0)
        program = Program(
            b.function,
            [GlobalArray(g.name, g.size, tuple(v & ((1 << 64) - 1) for v in g.init))
             for g in self.module.globals_],
        )
        self._prune_unreachable(program)
        verify_program(program)
        return program

    def _prune_unreachable(self, program: Program) -> None:
        func = program.main
        # Remove empty unterminated leftovers and anything unreachable.
        # Empty blocks cannot be in a CFG; temporarily drop them.
        empty = [bl.label for bl in func.blocks() if not bl.instructions]
        for label in empty:
            del func._blocks[label]
        cfg = CFG(func)
        keep = cfg.reachable()
        for label in list(func._blocks):
            if label not in keep:
                del func._blocks[label]

    # -- statements --------------------------------------------------------------
    def gen_stmts(self, stmts: tuple[ast.Stmt, ...], frame: _InlineFrame) -> bool:
        """Emit statements; returns False if control definitely left."""
        for s in stmts:
            if not self.gen_stmt(s, frame):
                return False
        return True

    def gen_stmt(self, s: ast.Stmt, frame: _InlineFrame) -> bool:
        b = self.builder
        if isinstance(s, ast.VarDecl):
            value = self.gen_expr(s.init, frame)
            reg = b.function.new_gp()
            frame.env[s.name] = reg
            b.mov_to(reg, value)
            return True
        if isinstance(s, ast.Assign):
            value = self.gen_expr(s.value, frame)
            if isinstance(s.target, ast.VarRef):
                dest = frame.env[s.target.name]
                if dest != value:
                    b.mov_to(dest, value)
            else:
                addr = self.gen_address(s.target, frame)
                b.store(addr, value)
            return True
        if isinstance(s, ast.If):
            then_l = self._label("then")
            join_l = self._label("join")
            else_l = self._label("else") if s.else_body else join_l
            self.gen_cond(s.cond, then_l, else_l, frame)
            b.add_and_enter(then_l)
            fell_then = self.gen_stmts(s.then_body, frame)
            if fell_then:
                b.jmp(join_l)
            fell_else = True
            if s.else_body:
                b.add_and_enter(else_l)
                fell_else = self.gen_stmts(s.else_body, frame)
                if fell_else:
                    b.jmp(join_l)
            if fell_then or fell_else or not s.else_body:
                b.add_and_enter(join_l)
                return True
            return False
        if isinstance(s, ast.While):
            head_l = self._label("while_head")
            body_l = self._label("while_body")
            exit_l = self._label("while_exit")
            b.jmp(head_l)
            b.add_and_enter(head_l)
            self.gen_cond(s.cond, body_l, exit_l, frame)
            b.add_and_enter(body_l)
            self._loop_stack.append((head_l, exit_l))
            fell = self.gen_stmts(s.body, frame)
            self._loop_stack.pop()
            if fell:
                b.jmp(head_l)
            b.add_and_enter(exit_l)
            return True
        if isinstance(s, ast.For):
            if s.init is not None:
                if not self.gen_stmt(s.init, frame):  # pragma: no cover
                    return False
            head_l = self._label("for_head")
            body_l = self._label("for_body")
            step_l = self._label("for_step")
            exit_l = self._label("for_exit")
            b.jmp(head_l)
            b.add_and_enter(head_l)
            if s.cond is not None:
                self.gen_cond(s.cond, body_l, exit_l, frame)
            else:
                b.jmp(body_l)
            b.add_and_enter(body_l)
            self._loop_stack.append((step_l, exit_l))
            fell = self.gen_stmts(s.body, frame)
            self._loop_stack.pop()
            if fell:
                b.jmp(step_l)
            b.add_and_enter(step_l)
            if s.step is not None:
                self.gen_stmt(s.step, frame)
            b.jmp(head_l)
            b.add_and_enter(exit_l)
            return True
        if isinstance(s, ast.Break):
            b.jmp(self._loop_stack[-1][1])
            return False
        if isinstance(s, ast.Continue):
            b.jmp(self._loop_stack[-1][0])
            return False
        if isinstance(s, ast.Return):
            if frame.ret_label is None:
                # main: exit code must be a literal (checked by sema).
                code = s.value.value if isinstance(s.value, ast.IntLit) else 0
                b.halt(code)
            else:
                if s.value is not None:
                    value = self.gen_expr(s.value, frame)
                    b.mov_to(frame.ret_reg, value)
                b.jmp(frame.ret_label)
            return False
        if isinstance(s, ast.Out):
            value = self.gen_expr(s.value, frame)
            b.out(value)
            return True
        if isinstance(s, ast.ExprStmt):
            self.gen_expr(s.expr, frame)
            return True
        raise SemanticError(f"unknown statement {type(s).__name__}")

    # -- conditions ---------------------------------------------------------------
    def gen_cond(
        self, e: ast.Expr, true_l: str, false_l: str, frame: _InlineFrame
    ) -> None:
        """Emit branching code for a boolean context (block gets terminated)."""
        b = self.builder
        if isinstance(e, ast.Binary) and e.op in _CMP_OPS:
            left = self.gen_expr(e.left, frame)
            right = self._expr_operand(e.right, frame)
            pred = getattr(b, _CMP_GEN[e.op])(left, right)
            b.brt(pred, true_l, false_l)
            return
        if isinstance(e, ast.Binary) and e.op == "&&":
            mid = self._label("and")
            self.gen_cond(e.left, mid, false_l, frame)
            b.add_and_enter(mid)
            self.gen_cond(e.right, true_l, false_l, frame)
            return
        if isinstance(e, ast.Binary) and e.op == "||":
            mid = self._label("or")
            self.gen_cond(e.left, true_l, mid, frame)
            b.add_and_enter(mid)
            self.gen_cond(e.right, true_l, false_l, frame)
            return
        if isinstance(e, ast.Unary) and e.op == "!":
            self.gen_cond(e.operand, false_l, true_l, frame)
            return
        value = self.gen_expr(e, frame)
        pred = b.cmpne(value, 0)
        b.brt(pred, true_l, false_l)

    # -- expressions ---------------------------------------------------------------
    def _expr_operand(self, e: ast.Expr, frame: _InlineFrame):
        """Int literals stay immediates where the ISA allows them."""
        if isinstance(e, ast.IntLit):
            return e.value
        return self.gen_expr(e, frame)

    def gen_address(self, e: ast.Index, frame: _InlineFrame) -> Reg:
        base = self.global_base[e.array]
        if isinstance(e.index, ast.IntLit):
            return self.builder.movi(base + e.index.value)
        idx = self.gen_expr(e.index, frame)
        return self.builder.add(idx, base)

    def gen_expr(self, e: ast.Expr, frame: _InlineFrame) -> Reg:
        b = self.builder
        if isinstance(e, ast.IntLit):
            return b.movi(e.value)
        if isinstance(e, ast.VarRef):
            return frame.env[e.name]
        if isinstance(e, ast.Index):
            return b.load(self.gen_address(e, frame))
        if isinstance(e, ast.Unary):
            if e.op == "-":
                return b.neg(self.gen_expr(e.operand, frame))
            if e.op == "~":
                return b.not_(self.gen_expr(e.operand, frame))
            # '!': 0/1 value
            value = self.gen_expr(e.operand, frame)
            pred = b.cmpeq(value, 0)
            one = b.movi(1)
            zero = b.movi(0)
            return b.select(pred, one, zero)
        if isinstance(e, ast.Binary):
            if e.op in _ARITH_GEN:
                left = self.gen_expr(e.left, frame)
                right = self._expr_operand(e.right, frame)
                return getattr(b, _ARITH_GEN[e.op])(left, right)
            if e.op in _CMP_OPS:
                left = self.gen_expr(e.left, frame)
                right = self._expr_operand(e.right, frame)
                pred = getattr(b, _CMP_GEN[e.op])(left, right)
                one = b.movi(1)
                zero = b.movi(0)
                return b.select(pred, one, zero)
            if e.op in ("&&", "||"):
                result = b.function.new_gp()
                true_l = self._label("btrue")
                false_l = self._label("bfalse")
                join_l = self._label("bjoin")
                self.gen_cond(e, true_l, false_l, frame)
                b.add_and_enter(true_l)
                b.movi_to(result, 1)
                b.jmp(join_l)
                b.add_and_enter(false_l)
                b.movi_to(result, 0)
                b.jmp(join_l)
                b.add_and_enter(join_l)
                return result
            raise SemanticError(f"unknown operator {e.op!r}")
        if isinstance(e, ast.Call):
            return self.gen_call(e, frame)
        raise SemanticError(f"unknown expression {type(e).__name__}")

    def gen_call(self, call: ast.Call, frame: _InlineFrame) -> Reg:
        b = self.builder
        if call.name == "abs":
            return b.abs_(self.gen_expr(call.args[0], frame))
        if call.name == "min":
            return b.min_(
                self.gen_expr(call.args[0], frame), self.gen_expr(call.args[1], frame)
            )
        if call.name == "max":
            return b.max_(
                self.gen_expr(call.args[0], frame), self.gen_expr(call.args[1], frame)
            )
        callee = self.functions[call.name]
        args = [self.gen_expr(a, frame) for a in call.args]

        env: dict[str, Reg] = {}
        # Parameters are by-value: copy into fresh registers.
        for param, arg in zip(callee.params, args):
            reg = b.function.new_gp()
            b.mov_to(reg, arg)
            env[param] = reg
        ret_reg = b.function.new_gp()
        ret_label = self._label(f"ret_{call.name}")
        inner = _InlineFrame(env=env, ret_reg=ret_reg, ret_label=ret_label)

        loops = self._loop_stack
        self._loop_stack = []  # break/continue do not cross function bounds
        emit = (
            self.builder.library() if callee.is_library else _nullcontext()
        )
        with emit:
            b.movi_to(ret_reg, 0)  # default return value
            fell = self.gen_stmts(callee.body, inner)
            if fell:
                b.jmp(ret_label)
        self._loop_stack = loops
        b.add_and_enter(ret_label)
        return ret_reg


class _nullcontext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def compile_source(source: str, name: str = "main") -> Program:
    """Front-end entry point: minic source text -> verified IR program."""
    module = parse(source)
    analyze(module)
    gen = CodeGenerator(module)
    program = gen.compile()
    program.main.name = name
    return program
