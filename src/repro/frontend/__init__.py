"""minic: a small C-like language compiled to the repro IR.

The paper compiles MediaBench/SPEC C sources with GCC; our stand-in front
end gives the workloads a readable source form and exercises a realistic
lowering (globals, loops, short-circuit conditions, full inlining).
``lib func`` definitions model binary-only system libraries: their inlined
instructions are tagged ``from_library`` and stay outside the sphere of
replication (no duplication, no checks), reproducing the paper's residual
silent-data-corruption channel.

Every call is inlined (recursion is rejected), so a linked program is a
single IR function — the unit the CASTED passes operate on.
"""

from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse
from repro.frontend.codegen import compile_source
from repro.frontend import ast_nodes as ast

__all__ = ["tokenize", "Token", "TokenKind", "parse", "compile_source", "ast"]
