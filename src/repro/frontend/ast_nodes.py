"""minic abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    """Base class; ``line`` points at the defining token for diagnostics."""

    line: int = field(default=0, kw_only=True)


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class IntLit(Node):
    value: int


@dataclass(frozen=True)
class VarRef(Node):
    name: str


@dataclass(frozen=True)
class Index(Node):
    """Global array element: ``array[index]``."""

    array: str
    index: "Expr"


@dataclass(frozen=True)
class Unary(Node):
    op: str  # '-', '~', '!'
    operand: "Expr"


@dataclass(frozen=True)
class Binary(Node):
    op: str  # arithmetic, comparison, '&&', '||'
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call(Node):
    name: str
    args: tuple["Expr", ...]


Expr = IntLit | VarRef | Index | Unary | Binary | Call


# -- statements ----------------------------------------------------------------


@dataclass(frozen=True)
class VarDecl(Node):
    name: str
    init: Expr


@dataclass(frozen=True)
class Assign(Node):
    target: VarRef | Index
    value: Expr


@dataclass(frozen=True)
class If(Node):
    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...]


@dataclass(frozen=True)
class While(Node):
    cond: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class For(Node):
    """``for (init; cond; step) body`` — sugar handled by codegen."""

    init: "Stmt | None"
    cond: Expr | None
    step: "Stmt | None"
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Continue(Node):
    pass


@dataclass(frozen=True)
class Return(Node):
    value: Expr | None


@dataclass(frozen=True)
class Out(Node):
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: Expr


Stmt = VarDecl | Assign | If | While | For | Break | Continue | Return | Out | ExprStmt


# -- top level -----------------------------------------------------------------


@dataclass(frozen=True)
class FuncDef(Node):
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    is_library: bool = False


@dataclass(frozen=True)
class GlobalDecl(Node):
    name: str
    size: int
    init: tuple[int, ...] = ()


@dataclass(frozen=True)
class Module(Node):
    globals_: tuple[GlobalDecl, ...]
    functions: tuple[FuncDef, ...]

    def function(self, name: str) -> FuncDef | None:
        for f in self.functions:
            if f.name == name:
                return f
        return None
