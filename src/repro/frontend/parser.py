"""Recursive-descent parser for minic.

Grammar (precedence climbing for expressions)::

    module     := (global | funcdef)*
    global     := 'global' IDENT '[' INT ']' ('=' '{' INT (',' INT)* '}')? ';'
    funcdef    := 'lib'? 'func' IDENT '(' params? ')' block
    block      := '{' stmt* '}'
    stmt       := 'var' IDENT '=' expr ';'
                | 'if' '(' expr ')' block ('else' (block | ifstmt))?
                | 'while' '(' expr ')' block
                | 'for' '(' simple? ';' expr? ';' simple? ')' block
                | 'break' ';' | 'continue' ';'
                | 'return' expr? ';' | 'out' '(' expr ')' ';'
                | simple ';'
    simple     := lvalue '=' expr | expr
    expr       := precedence-climbed binary over unary
    unary      := ('-' | '~' | '!') unary | primary
    primary    := INT | IDENT ('(' args ')' | '[' expr ']')? | '(' expr ')'
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, TokenKind, tokenize

#: Binary operator precedence (higher binds tighter); all left-associative.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in (
            TokenKind.OP, TokenKind.KEYWORD
        )

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise ParseError(
                f"expected {text!r}, got {self.cur.text!r}", self.cur.line, self.cur.col
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.cur.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, got {self.cur.text!r}",
                self.cur.line,
                self.cur.col,
            )
        return self.advance()

    def expect_int(self) -> int:
        neg = self.accept("-")
        if self.cur.kind is not TokenKind.INT:
            raise ParseError(
                f"expected integer, got {self.cur.text!r}", self.cur.line, self.cur.col
            )
        value = int(self.advance().text, 0)
        return -value if neg else value

    # -- top level --------------------------------------------------------------
    def module(self) -> ast.Module:
        globals_: list[ast.GlobalDecl] = []
        functions: list[ast.FuncDef] = []
        while self.cur.kind is not TokenKind.EOF:
            if self.check("global"):
                globals_.append(self.global_decl())
            elif self.check("func") or self.check("lib"):
                functions.append(self.funcdef())
            else:
                raise ParseError(
                    f"expected 'global' or 'func', got {self.cur.text!r}",
                    self.cur.line,
                    self.cur.col,
                )
        return ast.Module(tuple(globals_), tuple(functions))

    def global_decl(self) -> ast.GlobalDecl:
        line = self.expect("global").line
        name = self.expect_ident().text
        self.expect("[")
        size = self.expect_int()
        self.expect("]")
        init: list[int] = []
        if self.accept("="):
            self.expect("{")
            if not self.check("}"):
                init.append(self.expect_int())
                while self.accept(","):
                    init.append(self.expect_int())
            self.expect("}")
        self.expect(";")
        return ast.GlobalDecl(name, size, tuple(init), line=line)

    def funcdef(self) -> ast.FuncDef:
        is_library = self.accept("lib")
        line = self.expect("func").line
        name = self.expect_ident().text
        self.expect("(")
        params: list[str] = []
        if not self.check(")"):
            params.append(self.expect_ident().text)
            while self.accept(","):
                params.append(self.expect_ident().text)
        self.expect(")")
        body = self.block()
        return ast.FuncDef(name, tuple(params), body, is_library, line=line)

    # -- statements --------------------------------------------------------------
    def block(self) -> tuple[ast.Stmt, ...]:
        self.expect("{")
        stmts: list[ast.Stmt] = []
        while not self.check("}"):
            stmts.append(self.stmt())
        self.expect("}")
        return tuple(stmts)

    def stmt(self) -> ast.Stmt:
        tok = self.cur
        if self.check("var"):
            self.advance()
            name = self.expect_ident().text
            self.expect("=")
            init = self.expr()
            self.expect(";")
            return ast.VarDecl(name, init, line=tok.line)
        if self.check("if"):
            return self.if_stmt()
        if self.check("while"):
            self.advance()
            self.expect("(")
            cond = self.expr()
            self.expect(")")
            body = self.block()
            return ast.While(cond, body, line=tok.line)
        if self.check("for"):
            self.advance()
            self.expect("(")
            if self.check(";"):
                init = None
            elif self.check("var"):
                vtok = self.advance()
                vname = self.expect_ident().text
                self.expect("=")
                init = ast.VarDecl(vname, self.expr(), line=vtok.line)
            else:
                init = self.simple_stmt()
            self.expect(";")
            cond = None if self.check(";") else self.expr()
            self.expect(";")
            step = None if self.check(")") else self.simple_stmt()
            self.expect(")")
            body = self.block()
            return ast.For(init, cond, step, body, line=tok.line)
        if self.check("break"):
            self.advance()
            self.expect(";")
            return ast.Break(line=tok.line)
        if self.check("continue"):
            self.advance()
            self.expect(";")
            return ast.Continue(line=tok.line)
        if self.check("return"):
            self.advance()
            value = None if self.check(";") else self.expr()
            self.expect(";")
            return ast.Return(value, line=tok.line)
        if self.check("out"):
            self.advance()
            self.expect("(")
            value = self.expr()
            self.expect(")")
            self.expect(";")
            return ast.Out(value, line=tok.line)
        s = self.simple_stmt()
        self.expect(";")
        return s

    def if_stmt(self) -> ast.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.expr()
        self.expect(")")
        then_body = self.block()
        else_body: tuple[ast.Stmt, ...] = ()
        if self.accept("else"):
            if self.check("if"):
                else_body = (self.if_stmt(),)
            else:
                else_body = self.block()
        return ast.If(cond, then_body, else_body, line=tok.line)

    def simple_stmt(self) -> ast.Stmt:
        """Assignment or expression statement (no trailing ';')."""
        tok = self.cur
        start = self.pos
        if self.cur.kind is TokenKind.IDENT:
            name = self.advance().text
            if self.accept("="):
                value = self.expr()
                return ast.Assign(ast.VarRef(name, line=tok.line), value, line=tok.line)
            if self.check("["):
                self.advance()
                index = self.expr()
                self.expect("]")
                if self.accept("="):
                    value = self.expr()
                    return ast.Assign(
                        ast.Index(name, index, line=tok.line), value, line=tok.line
                    )
            # not an assignment: re-parse as expression
            self.pos = start
        expr = self.expr()
        return ast.ExprStmt(expr, line=tok.line)

    # -- expressions --------------------------------------------------------------
    def expr(self, min_prec: int = 1) -> ast.Expr:
        left = self.unary()
        while True:
            tok = self.cur
            prec = _PRECEDENCE.get(tok.text) if tok.kind is TokenKind.OP else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self.expr(prec + 1)
            left = ast.Binary(tok.text, left, right, line=tok.line)

    def unary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is TokenKind.OP and tok.text in ("-", "~", "!"):
            self.advance()
            return ast.Unary(tok.text, self.unary(), line=tok.line)
        return self.primary()

    def primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(int(tok.text, 0), line=tok.line)
        if self.accept("("):
            inner = self.expr()
            self.expect(")")
            return inner
        if tok.kind is TokenKind.IDENT:
            name = self.advance().text
            if self.accept("("):
                args: list[ast.Expr] = []
                if not self.check(")"):
                    args.append(self.expr())
                    while self.accept(","):
                        args.append(self.expr())
                self.expect(")")
                return ast.Call(name, tuple(args), line=tok.line)
            if self.accept("["):
                index = self.expr()
                self.expect("]")
                return ast.Index(name, index, line=tok.line)
            return ast.VarRef(name, line=tok.line)
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


def parse(source: str) -> ast.Module:
    """Parse minic source into a :class:`~repro.frontend.ast_nodes.Module`."""
    return _Parser(tokenize(source)).module()
