"""Functional semantics of the ISA.

All GP values are 64-bit two's-complement integers stored as Python ints in
``[0, 2**64)``; predicates are 0/1.  These routines are shared by the IR
interpreter (reference model) and the cycle-level VLIW executor, so the two
can be differentially tested against each other.
"""

from __future__ import annotations

from repro.errors import ArithmeticTrap
from repro.isa.opcodes import Opcode

_MASK64 = (1 << 64) - 1
_SIGN = 1 << 63


def wrap64(value: int) -> int:
    """Reduce an arbitrary int to its unsigned 64-bit representation."""
    return value & _MASK64


def to_signed(value: int) -> int:
    """Interpret an unsigned 64-bit value as two's-complement signed."""
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN else value


def _sdiv(a: int, b: int) -> int:
    """C-style (truncating) signed division."""
    if b == 0:
        raise ArithmeticTrap("division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    """C-style signed remainder: ``a - trunc(a/b)*b``."""
    if b == 0:
        raise ArithmeticTrap("remainder by zero")
    return a - _sdiv(a, b) * b


def eval_alu(opcode: Opcode, operands: tuple[int, ...]) -> int:
    """Evaluate a GP-producing ALU/move opcode on unsigned-64 operands."""
    if opcode is Opcode.MOV or opcode is Opcode.MOVI:
        return wrap64(operands[0])
    if opcode is Opcode.SELECT:
        pred, a, b = operands
        return a if pred else b

    if opcode in _UNARY:
        a = to_signed(operands[0])
        return wrap64(_UNARY[opcode](a))

    a, b = to_signed(operands[0]), to_signed(operands[1])
    if opcode is Opcode.ADD:
        return wrap64(a + b)
    if opcode is Opcode.SUB:
        return wrap64(a - b)
    if opcode is Opcode.MUL:
        return wrap64(a * b)
    if opcode is Opcode.DIV:
        return wrap64(_sdiv(a, b))
    if opcode is Opcode.REM:
        return wrap64(_srem(a, b))
    if opcode is Opcode.AND:
        return wrap64(a & b)
    if opcode is Opcode.OR:
        return wrap64(a | b)
    if opcode is Opcode.XOR:
        return wrap64(a ^ b)
    if opcode is Opcode.SHL:
        return wrap64(a << (b & 63))
    if opcode is Opcode.SHRL:
        return wrap64(operands[0] >> (b & 63))  # logical: shift the raw bits
    if opcode is Opcode.SHRA:
        return wrap64(a >> (b & 63))
    if opcode is Opcode.MIN:
        return wrap64(min(a, b))
    if opcode is Opcode.MAX:
        return wrap64(max(a, b))
    raise ValueError(f"{opcode.name} is not an ALU opcode")


_UNARY = {
    Opcode.NEG: lambda a: -a,
    Opcode.ABS: lambda a: abs(a),
    Opcode.NOT: lambda a: ~a,
}


def eval_compare(opcode: Opcode, a: int, b: int) -> int:
    """Evaluate a compare (GP x GP -> PR) or predicate opcode; returns 0/1."""
    if opcode is Opcode.PNE:
        return int(a != b)
    if opcode is Opcode.PMOV:
        return int(bool(a))
    sa, sb = to_signed(a), to_signed(b)
    if opcode is Opcode.CMPEQ:
        return int(sa == sb)
    if opcode is Opcode.CMPNE:
        return int(sa != sb)
    if opcode is Opcode.CMPLT:
        return int(sa < sb)
    if opcode is Opcode.CMPLE:
        return int(sa <= sb)
    if opcode is Opcode.CMPGT:
        return int(sa > sb)
    if opcode is Opcode.CMPGE:
        return int(sa >= sb)
    raise ValueError(f"{opcode.name} is not a compare opcode")
