"""Opcode definitions and static metadata.

``OP_INFO`` is the single source of truth for operand shapes, latency classes
and the instruction categories the CASTED error-detection pass dispatches on
(paper §III-B): *control flow*, *store-like* and everything else
(replicable).  Checks are a ``CMPNE``/``CHKBR`` pair, so the "compare + jump"
cost structure of the paper's checking code is preserved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.registers import RegClass

_GP = RegClass.GP
_PR = RegClass.PR


class LatencyClass(enum.Enum):
    """Coarse latency buckets; the machine config maps them to cycles."""

    FAST = "fast"  # single-cycle integer / move / compare
    MUL = "mul"
    DIV = "div"
    LOAD = "load"  # L1-hit latency; misses stall dynamically
    STORE = "store"
    BRANCH = "branch"


class Opcode(enum.Enum):
    """Every instruction the target machine understands."""

    # two-input ALU (immediate allowed in the second slot)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHRL = "shrl"
    SHRA = "shra"
    MIN = "min"
    MAX = "max"
    # one-input ALU
    NEG = "neg"
    ABS = "abs"
    NOT = "not"
    # moves
    MOV = "mov"
    MOVI = "movi"
    SELECT = "select"
    # compares (GP x GP -> PR, immediate allowed in the second slot)
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    # predicate ops
    PNE = "pne"
    PMOV = "pmov"
    # memory
    LOAD = "load"
    STORE = "store"
    # frame (spill) slot accesses emitted by the register allocator; the
    # address is frame_base + imm, so no address register is consumed
    LOADFP = "loadfp"
    STOREFP = "storefp"
    # observable output (store-like: leaves the sphere of replication)
    OUT = "out"
    # control flow
    JMP = "jmp"
    BRT = "brt"
    BRF = "brf"
    HALT = "halt"
    # side exit to the fault handler (the "jump" half of a check)
    CHKBR = "chkbr"
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    mnemonic: str
    in_classes: tuple[RegClass, ...] = ()
    out_class: RegClass | None = None
    latency: LatencyClass = LatencyClass.FAST
    allow_imm: bool = False  # immediate may replace the LAST register input
    needs_imm: bool = False  # immediate operand is mandatory (MOVI, mem offset)
    is_load: bool = False
    is_store: bool = False
    is_out: bool = False
    is_branch: bool = False  # redirects the whole machine (block terminator)
    is_terminator: bool = False
    is_side_exit: bool = False  # CHKBR: may leave the block without terminating it
    n_targets: int = 0
    commutative: bool = False

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_control(self) -> bool:
        return self.is_branch or self.is_terminator or self.is_side_exit

    @property
    def has_side_effects(self) -> bool:
        return self.is_store or self.is_out or self.is_control

    @property
    def replicable(self) -> bool:
        """May the error-detection pass duplicate this opcode?

        Paper §III-B: control flow, stores (and anything else that escapes
        the sphere of replication, i.e. ``OUT``) are never replicated.
        """
        return not (self.is_control or self.is_store or self.is_out)


def _alu2(mnemonic: str, commutative: bool = False, latency: LatencyClass = LatencyClass.FAST) -> OpInfo:
    return OpInfo(mnemonic, (_GP, _GP), _GP, latency, allow_imm=True, commutative=commutative)


def _alu1(mnemonic: str) -> OpInfo:
    return OpInfo(mnemonic, (_GP,), _GP)


def _cmp(mnemonic: str, commutative: bool = False) -> OpInfo:
    return OpInfo(mnemonic, (_GP, _GP), _PR, allow_imm=True, commutative=commutative)


OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.ADD: _alu2("add", commutative=True),
    Opcode.SUB: _alu2("sub"),
    Opcode.MUL: _alu2("mul", commutative=True, latency=LatencyClass.MUL),
    Opcode.DIV: _alu2("div", latency=LatencyClass.DIV),
    Opcode.REM: _alu2("rem", latency=LatencyClass.DIV),
    Opcode.AND: _alu2("and", commutative=True),
    Opcode.OR: _alu2("or", commutative=True),
    Opcode.XOR: _alu2("xor", commutative=True),
    Opcode.SHL: _alu2("shl"),
    Opcode.SHRL: _alu2("shrl"),
    Opcode.SHRA: _alu2("shra"),
    Opcode.MIN: _alu2("min", commutative=True),
    Opcode.MAX: _alu2("max", commutative=True),
    Opcode.NEG: _alu1("neg"),
    Opcode.ABS: _alu1("abs"),
    Opcode.NOT: _alu1("not"),
    Opcode.MOV: OpInfo("mov", (_GP,), _GP),
    Opcode.MOVI: OpInfo("movi", (), _GP, needs_imm=True),
    Opcode.SELECT: OpInfo("select", (_PR, _GP, _GP), _GP),
    Opcode.CMPEQ: _cmp("cmpeq", commutative=True),
    Opcode.CMPNE: _cmp("cmpne", commutative=True),
    Opcode.CMPLT: _cmp("cmplt"),
    Opcode.CMPLE: _cmp("cmple"),
    Opcode.CMPGT: _cmp("cmpgt"),
    Opcode.CMPGE: _cmp("cmpge"),
    Opcode.PNE: OpInfo("pne", (_PR, _PR), _PR, commutative=True),
    Opcode.PMOV: OpInfo("pmov", (_PR,), _PR),
    Opcode.LOAD: OpInfo("load", (_GP,), _GP, LatencyClass.LOAD, needs_imm=True, is_load=True),
    Opcode.STORE: OpInfo(
        "store", (_GP, _GP), None, LatencyClass.STORE, needs_imm=True, is_store=True
    ),
    Opcode.LOADFP: OpInfo(
        "loadfp", (), _GP, LatencyClass.LOAD, needs_imm=True, is_load=True
    ),
    Opcode.STOREFP: OpInfo(
        "storefp", (_GP,), None, LatencyClass.STORE, needs_imm=True, is_store=True
    ),
    Opcode.OUT: OpInfo("out", (_GP,), None, LatencyClass.STORE, is_out=True),
    Opcode.JMP: OpInfo(
        "jmp", (), None, LatencyClass.BRANCH, is_branch=True, is_terminator=True, n_targets=1
    ),
    Opcode.BRT: OpInfo(
        "brt", (_PR,), None, LatencyClass.BRANCH, is_branch=True, is_terminator=True, n_targets=2
    ),
    Opcode.BRF: OpInfo(
        "brf", (_PR,), None, LatencyClass.BRANCH, is_branch=True, is_terminator=True, n_targets=2
    ),
    Opcode.HALT: OpInfo("halt", (), None, LatencyClass.BRANCH, needs_imm=True, is_terminator=True),
    Opcode.CHKBR: OpInfo("chkbr", (_PR,), None, LatencyClass.BRANCH, is_side_exit=True),
    Opcode.NOP: OpInfo("nop"),
}

# Mnemonic -> opcode, for the textual IR parser.
MNEMONIC_TO_OPCODE: dict[str, Opcode] = {info.mnemonic: op for op, info in OP_INFO.items()}

assert set(OP_INFO) == set(Opcode), "every opcode needs an OP_INFO entry"
