"""Register model.

The compiler works on an unbounded supply of *virtual* registers; the
linear-scan allocator rewrites them to *physical* registers drawn from each
cluster's register file (the paper's Table I: 64 GP + 32 PR per cluster; the
64 FP registers are unused by our integer workloads and are not modelled).

A register is identified by ``(rclass, index, virtual)``.  Physical registers
additionally carry the cluster that owns them.  ``Reg`` is immutable and
hashable so it can key renaming tables (the paper's Fig. 4 data structures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Architectural register classes."""

    GP = "r"  # 64-bit general purpose
    PR = "p"  # 1-bit predicate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegClass.{self.name}"


@dataclass(frozen=True, slots=True)
class Reg:
    """A virtual or physical register operand.

    Attributes
    ----------
    rclass:
        GP or PR.
    index:
        Virtual-register number, or physical index within the owning
        cluster's file.
    virtual:
        True before register allocation.
    cluster:
        Owning cluster for physical registers; ``-1`` for virtual ones.
    """

    rclass: RegClass
    index: int
    virtual: bool = True
    cluster: int = -1

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"negative register index {self.index}")
        if not self.virtual and self.cluster < 0:
            raise ValueError("physical register requires a cluster")
        if self.virtual and self.cluster >= 0:
            raise ValueError("virtual register must not carry a cluster")

    @property
    def is_gp(self) -> bool:
        return self.rclass is RegClass.GP

    @property
    def is_pr(self) -> bool:
        return self.rclass is RegClass.PR

    def __str__(self) -> str:
        prefix = "v" if self.virtual else f"c{self.cluster}."
        return f"{prefix}{self.rclass.value}{self.index}"

    __repr__ = __str__


def GP(index: int, *, virtual: bool = True, cluster: int = -1) -> Reg:
    """Shorthand constructor for a general-purpose register."""
    return Reg(RegClass.GP, index, virtual, cluster)


def PR(index: int, *, virtual: bool = True, cluster: int = -1) -> Reg:
    """Shorthand constructor for a predicate register."""
    return Reg(RegClass.PR, index, virtual, cluster)
