"""The mutable instruction record all compiler passes operate on.

Each instruction carries, besides opcode/operands, the provenance *role* the
CASTED pipeline needs: original program code, replicated code, checking code,
shadow-copy code (Algorithm 1's ``COPY_INSN``) or spill code.  The cluster
assignment written by SCED/DCED/CASTED lives here too.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import IRError
from repro.isa.opcodes import OP_INFO, Opcode, OpInfo
from repro.isa.registers import Reg

_uid_counter = itertools.count(1)


class Role(enum.Enum):
    """Provenance of an instruction within the error-detection pipeline."""

    ORIG = "orig"  # straight from the front end
    DUP = "dup"  # replica emitted by the duplication step
    SHADOW_COPY = "copy"  # shadow copy for a value with no replicated producer
    CHECK = "check"  # compare/jump pair guarding a non-replicated instruction
    SPILL = "spill"  # register-allocator spill/reload code

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Role.{self.name}"


# Roles that belong to the *redundant* stream (DCED sends these to cluster 1).
REDUNDANT_ROLES = frozenset({Role.DUP, Role.SHADOW_COPY, Role.CHECK})


@dataclass(eq=False)
class Instruction:
    """One machine instruction.

    Identity (``uid``) is process-unique, survives cloning *only* when
    explicitly requested, and keys the duplication/renaming tables of the
    error-detection pass (paper Fig. 4).
    """

    opcode: Opcode
    dests: tuple[Reg, ...] = ()
    srcs: tuple[Reg, ...] = ()
    imm: int | None = None
    targets: tuple[str, ...] = ()
    role: Role = Role.ORIG
    dup_of: int | None = None  # uid of the original this replicates
    from_library: bool = False  # binary-only library code: never protected
    cluster: int | None = None  # set by the assignment pass
    comment: str = ""
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def __post_init__(self) -> None:
        self.validate()

    # -- structure ---------------------------------------------------------
    @property
    def info(self) -> OpInfo:
        return OP_INFO[self.opcode]

    def validate(self) -> None:
        """Check operand shape against the opcode's ``OpInfo``."""
        info = self.info
        n_reg_in = len(info.in_classes)
        if self.imm is not None and not (info.allow_imm or info.needs_imm):
            raise IRError(f"{self.opcode.name} takes no immediate")
        if info.needs_imm and self.imm is None:
            raise IRError(f"{self.opcode.name} requires an immediate")
        expected_srcs = n_reg_in
        if info.allow_imm and self.imm is not None:
            expected_srcs -= 1  # immediate replaces the last register input
        if len(self.srcs) != expected_srcs:
            raise IRError(
                f"{self.opcode.name} expects {expected_srcs} register sources, "
                f"got {len(self.srcs)}"
            )
        for reg, rc in zip(self.srcs, info.in_classes):
            if reg.rclass is not rc:
                raise IRError(
                    f"{self.opcode.name} source {reg} has class {reg.rclass.name}, "
                    f"expected {rc.name}"
                )
        if info.out_class is None:
            if self.dests:
                raise IRError(f"{self.opcode.name} writes no register")
        else:
            if len(self.dests) != 1:
                raise IRError(f"{self.opcode.name} must write exactly one register")
            if self.dests[0].rclass is not info.out_class:
                raise IRError(
                    f"{self.opcode.name} dest {self.dests[0]} has wrong class"
                )
        n_targets = info.n_targets + (1 if info.is_side_exit else 0)
        if len(self.targets) != n_targets:
            raise IRError(
                f"{self.opcode.name} expects {n_targets} targets, got {len(self.targets)}"
            )

    # -- convenience -------------------------------------------------------
    @property
    def dest(self) -> Reg:
        if not self.dests:
            raise IRError(f"{self.opcode.name} has no destination")
        return self.dests[0]

    def reads(self) -> tuple[Reg, ...]:
        return self.srcs

    def writes(self) -> tuple[Reg, ...]:
        return self.dests

    @property
    def is_check(self) -> bool:
        return self.role is Role.CHECK

    @property
    def is_redundant(self) -> bool:
        return self.role in REDUNDANT_ROLES

    @property
    def protectable(self) -> bool:
        """May the error-detection pass replicate this instruction?

        Only pristine original instructions outside binary libraries whose
        opcode is replicable qualify (paper §III-B categories 1-3).
        """
        return self.role is Role.ORIG and not self.from_library and self.info.replicable

    def clone(self) -> "Instruction":
        """Fresh-uid structural copy (used by the duplication step)."""
        return Instruction(
            opcode=self.opcode,
            dests=self.dests,
            srcs=self.srcs,
            imm=self.imm,
            targets=self.targets,
            role=self.role,
            dup_of=self.dup_of,
            from_library=self.from_library,
            cluster=self.cluster,
            comment=self.comment,
        )

    def replace_srcs(self, mapping: dict[Reg, Reg]) -> None:
        """Rewrite source registers in place through ``mapping``."""
        self.srcs = tuple(mapping.get(r, r) for r in self.srcs)

    def replace_dests(self, mapping: dict[Reg, Reg]) -> None:
        """Rewrite destination registers in place through ``mapping``."""
        self.dests = tuple(mapping.get(r, r) for r in self.dests)

    def __str__(self) -> str:
        parts = [self.info.mnemonic]
        ops: list[str] = [str(d) for d in self.dests]
        ops += [str(s) for s in self.srcs]
        if self.imm is not None:
            ops.append(f"#{self.imm}")
        ops += [f"@{t}" for t in self.targets]
        if ops:
            parts.append(", ".join(ops))
        tags = []
        if self.role is not Role.ORIG:
            tags.append(self.role.value)
        if self.from_library:
            tags.append("lib")
        if self.cluster is not None:
            tags.append(f"cl{self.cluster}")
        if tags:
            parts.append(f"; [{' '.join(tags)}]")
        return " ".join(parts)

    __repr__ = __str__
