"""Instruction-set architecture of the target machine.

A small 64-bit RISC-style ISA with general-purpose (GP) and predicate (PR)
registers.  It deliberately preserves the three instruction properties the
CASTED algorithms dispatch on: *replicable*, *store-like* (memory/output side
effects) and *control flow*.
"""

from repro.isa.opcodes import OP_INFO, Opcode, OpInfo, LatencyClass
from repro.isa.registers import PR, GP, Reg, RegClass
from repro.isa.instruction import Instruction
from repro.isa.semantics import (
    eval_compare,
    eval_alu,
    to_signed,
    wrap64,
)

__all__ = [
    "Opcode",
    "OpInfo",
    "OP_INFO",
    "LatencyClass",
    "Reg",
    "RegClass",
    "GP",
    "PR",
    "Instruction",
    "wrap64",
    "to_signed",
    "eval_alu",
    "eval_compare",
]
