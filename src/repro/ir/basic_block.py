"""Basic blocks.

A block is a label plus an instruction list whose last entry is the block's
single terminator (``JMP``/``BRT``/``BRF``/``HALT``).  Check side exits
(``CHKBR``) may appear anywhere before the terminator: architecturally they
divert execution to the fault handler, so they do not end the block.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import IRError
from repro.isa.instruction import Instruction

#: Pseudo-label every ``CHKBR`` targets: the transient-fault handler.
DETECT_LABEL = "__detect__"


class BasicBlock:
    """A labelled straight-line instruction sequence with one terminator."""

    def __init__(self, label: str) -> None:
        if not label or label == DETECT_LABEL:
            raise IRError(f"invalid block label {label!r}")
        self.label = label
        self.instructions: list[Instruction] = []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def append(self, insn: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(f"block {self.label} already terminated")
        self.instructions.append(insn)
        return insn

    @property
    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].info.is_terminator

    @property
    def terminator(self) -> Instruction:
        if not self.is_terminated:
            raise IRError(f"block {self.label} lacks a terminator")
        return self.instructions[-1]

    def successor_labels(self) -> tuple[str, ...]:
        """Labels of CFG successors (side exits to the handler excluded)."""
        return self.terminator.targets

    def body(self) -> list[Instruction]:
        """All instructions except the terminator."""
        if not self.is_terminated:
            return list(self.instructions)
        return self.instructions[:-1]

    def insert_before(self, index: int, insn: Instruction) -> None:
        """Insert ``insn`` so it executes just before ``instructions[index]``."""
        if not 0 <= index <= len(self.instructions):
            raise IRError(f"insert index {index} out of range in {self.label}")
        self.instructions.insert(index, insn)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines += [f"  {insn}" for insn in self.instructions]
        return "\n".join(lines)

    __repr__ = __str__
