"""Compiler intermediate representation.

The IR is a conventional pre-scheduling back-end representation: functions of
basic blocks over unbounded virtual registers, with an explicit CFG and
per-block data-flow graphs.  This mirrors the point in the GCC back end where
the paper inserts its passes ("just before the first instruction scheduling
pass", Fig. 5).
"""

from repro.ir.basic_block import DETECT_LABEL, BasicBlock
from repro.ir.function import Function
from repro.ir.program import GlobalArray, MemoryLayout, Program
from repro.ir.builder import IRBuilder
from repro.ir.cfg import CFG
from repro.ir.dfg import DFG, DepKind, Edge
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.verifier import verify_function, verify_program
from repro.ir.printer import print_function, print_program
from repro.ir.parser import parse_program
from repro.ir.interp import ExitKind, Interpreter, RunResult

__all__ = [
    "BasicBlock",
    "DETECT_LABEL",
    "Function",
    "Program",
    "GlobalArray",
    "MemoryLayout",
    "IRBuilder",
    "CFG",
    "DFG",
    "Edge",
    "DepKind",
    "LivenessInfo",
    "compute_liveness",
    "verify_function",
    "verify_program",
    "print_function",
    "print_program",
    "parse_program",
    "Interpreter",
    "RunResult",
    "ExitKind",
]
