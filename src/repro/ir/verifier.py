"""IR well-formedness checks.

Run after the front end and after every transforming pass (cheap insurance:
all pass bugs in this project manifest as malformed IR long before they
manifest as wrong benchmark numbers).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.basic_block import DETECT_LABEL
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg


def verify_function(function: Function, allow_unreachable: bool = False) -> None:
    """Raise :class:`IRError` on any structural violation."""
    if len(function) == 0:
        raise IRError(f"function {function.name} has no blocks")

    for block in function.blocks():
        if not block.instructions:
            raise IRError(f"empty block {block.label}")
        if not block.is_terminated:
            raise IRError(f"block {block.label} lacks a terminator")
        for idx, insn in enumerate(block.instructions):
            insn.validate()
            if insn.info.is_terminator and idx != len(block.instructions) - 1:
                raise IRError(
                    f"terminator {insn} mid-block in {block.label} at {idx}"
                )
            if insn.opcode is Opcode.CHKBR and insn.targets != (DETECT_LABEL,):
                raise IRError(f"CHKBR must target {DETECT_LABEL}, got {insn.targets}")

    cfg = CFG(function)  # validates branch targets
    if not allow_unreachable and cfg.unreachable():
        raise IRError(
            f"unreachable blocks in {function.name}: {sorted(cfg.unreachable())}"
        )

    _check_defined_before_use(function, cfg)


def _check_defined_before_use(function: Function, cfg: CFG) -> None:
    """Forward may-be-undefined analysis; any possibly-undefined use is an error."""
    all_regs: set[Reg] = set()
    for _, _, insn in function.all_instructions():
        all_regs.update(insn.reads())
        all_regs.update(insn.writes())

    # defined_in[label]: registers definitely defined at block entry.
    defined_in: dict[str, set[Reg]] = {
        b.label: set(all_regs) for b in function.blocks()
    }
    defined_in[cfg.entry_label] = set()
    order = cfg.reverse_postorder()

    def block_defs_out(label: str, at_entry: set[Reg]) -> set[Reg]:
        defined = set(at_entry)
        for insn in function.block(label):
            defined.update(insn.writes())
        return defined

    changed = True
    while changed:
        changed = False
        for label in order:
            preds = cfg.preds[label]
            if label == cfg.entry_label:
                entry: set[Reg] = set()
            elif preds:
                entry = set(all_regs)
                for p in preds:
                    entry &= block_defs_out(p, defined_in[p])
            else:
                entry = set(all_regs)
            if entry != defined_in[label]:
                defined_in[label] = entry
                changed = True

    for label in order:
        defined = set(defined_in[label])
        for insn in function.block(label):
            for r in insn.reads():
                if r not in defined:
                    raise IRError(
                        f"register {r} may be used before definition in "
                        f"{label}: {insn}"
                    )
            defined.update(insn.writes())


def verify_program(program: Program, allow_unreachable: bool = False) -> None:
    """Verify the entry function and the data segment."""
    verify_function(program.main, allow_unreachable=allow_unreachable)
    layout = program.layout()
    for g in program.globals.values():
        if layout.base_of[g.name] <= 0:
            raise IRError(f"global {g.name} overlaps the null word")
