"""IR well-formedness checks.

Run after the front end and after every transforming pass (cheap insurance:
all pass bugs in this project manifest as malformed IR long before they
manifest as wrong benchmark numbers).

Structural shape (non-empty terminated blocks, operand classes, branch
targets) is always enforced.  The use-before-def check rides on the shared
dataflow framework's :class:`~repro.analysis.dataflow.MustDefined` analysis:
a register read that is not definitely defined on *every* path from the
entry is rejected.  Pass ``check_defs=False`` for IR from stages that are
legitimately not yet def-clean (e.g. hand-built fragments before the
renaming/shadow-copy step has materialized every producer).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.basic_block import DETECT_LABEL
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.opcodes import Opcode


def verify_function(
    function: Function,
    allow_unreachable: bool = False,
    check_defs: bool = True,
) -> None:
    """Raise :class:`IRError` on any structural violation."""
    if len(function) == 0:
        raise IRError(f"function {function.name} has no blocks")

    for block in function.blocks():
        if not block.instructions:
            raise IRError(f"empty block {block.label}")
        if not block.is_terminated:
            raise IRError(f"block {block.label} lacks a terminator")
        for idx, insn in enumerate(block.instructions):
            insn.validate()
            if insn.info.is_terminator and idx != len(block.instructions) - 1:
                raise IRError(
                    f"terminator {insn} mid-block in {block.label} at {idx}"
                )
            if insn.opcode is Opcode.CHKBR and insn.targets != (DETECT_LABEL,):
                raise IRError(f"CHKBR must target {DETECT_LABEL}, got {insn.targets}")

    cfg = CFG(function)  # validates branch targets
    if not allow_unreachable and cfg.unreachable():
        raise IRError(
            f"unreachable blocks in {function.name}: {sorted(cfg.unreachable())}"
        )

    if check_defs:
        _check_defined_before_use(function, cfg)


def _check_defined_before_use(function: Function, cfg: CFG) -> None:
    """Reject any use that may execute before a definition of its register."""
    from repro.analysis.dataflow import undefined_uses

    bad = undefined_uses(function, cfg)
    if bad:
        label, _, insn, reg = bad[0]
        raise IRError(
            f"register {reg} may be used before definition in {label}: {insn}"
        )


def verify_program(
    program: Program,
    allow_unreachable: bool = False,
    check_defs: bool = True,
) -> None:
    """Verify every function of the program and the data segment."""
    seen_labels: set[str] = set()
    for function in program.functions():
        verify_function(
            function, allow_unreachable=allow_unreachable, check_defs=check_defs
        )
        # Block labels must be unique program-wide: schedules, profiles and
        # lint findings key on the bare label.
        for label in function.block_labels():
            if label in seen_labels:
                raise IRError(f"block label {label!r} appears in two functions")
            seen_labels.add(label)
    layout = program.layout()
    for g in program.globals.values():
        if layout.base_of[g.name] <= 0:
            raise IRError(f"global {g.name} overlaps the null word")
