"""Classic backward liveness analysis over the CFG.

Produces per-block ``live_in``/``live_out`` register sets; the register
allocator and the dead-code-elimination pass both consume this.

The fixed-point iteration itself lives in the shared dataflow framework
(:mod:`repro.analysis.dataflow`); this module keeps the historical API and
the per-block use/def summaries its consumers expect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.isa.registers import Reg


@dataclass
class LivenessInfo:
    """Result of :func:`compute_liveness`."""

    live_in: dict[str, frozenset[Reg]] = field(default_factory=dict)
    live_out: dict[str, frozenset[Reg]] = field(default_factory=dict)
    use: dict[str, frozenset[Reg]] = field(default_factory=dict)
    defs: dict[str, frozenset[Reg]] = field(default_factory=dict)


def block_use_def(function: Function) -> tuple[dict[str, set[Reg]], dict[str, set[Reg]]]:
    """Per-block upward-exposed uses and definitions."""
    use: dict[str, set[Reg]] = {}
    defs: dict[str, set[Reg]] = {}
    for block in function.blocks():
        u: set[Reg] = set()
        d: set[Reg] = set()
        for insn in block:
            for r in insn.reads():
                if r not in d:
                    u.add(r)
            for r in insn.writes():
                d.add(r)
        use[block.label] = u
        defs[block.label] = d
    return use, defs


def compute_liveness(function: Function, cfg: CFG | None = None) -> LivenessInfo:
    """Solve the backward liveness equations via the dataflow framework."""
    from repro.analysis.dataflow import LiveVars, solve

    facts = solve(function, LiveVars(), cfg)
    use, defs = block_use_def(function)
    return LivenessInfo(
        live_in={lb: facts.entry[lb] for lb in use},
        live_out={lb: facts.exit[lb] for lb in use},
        use={lb: frozenset(s) for lb, s in use.items()},
        defs={lb: frozenset(s) for lb, s in defs.items()},
    )
