"""Classic backward liveness analysis over the CFG.

Produces per-block ``live_in``/``live_out`` register sets; the register
allocator and the dead-code-elimination pass both consume this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.isa.registers import Reg


@dataclass
class LivenessInfo:
    """Result of :func:`compute_liveness`."""

    live_in: dict[str, frozenset[Reg]] = field(default_factory=dict)
    live_out: dict[str, frozenset[Reg]] = field(default_factory=dict)
    use: dict[str, frozenset[Reg]] = field(default_factory=dict)
    defs: dict[str, frozenset[Reg]] = field(default_factory=dict)


def block_use_def(function: Function) -> tuple[dict[str, set[Reg]], dict[str, set[Reg]]]:
    """Per-block upward-exposed uses and definitions."""
    use: dict[str, set[Reg]] = {}
    defs: dict[str, set[Reg]] = {}
    for block in function.blocks():
        u: set[Reg] = set()
        d: set[Reg] = set()
        for insn in block:
            for r in insn.reads():
                if r not in d:
                    u.add(r)
            for r in insn.writes():
                d.add(r)
        use[block.label] = u
        defs[block.label] = d
    return use, defs


def compute_liveness(function: Function, cfg: CFG | None = None) -> LivenessInfo:
    """Iterate the backward dataflow equations to a fixed point."""
    cfg = cfg or CFG(function)
    use, defs = block_use_def(function)
    labels = cfg.reverse_postorder()
    live_in: dict[str, set[Reg]] = {lb: set() for lb in use}
    live_out: dict[str, set[Reg]] = {lb: set() for lb in use}

    changed = True
    while changed:
        changed = False
        # Postorder converges fastest for backward problems.
        for label in reversed(labels):
            out: set[Reg] = set()
            for succ in cfg.succs[label]:
                out |= live_in[succ]
            inn = use[label] | (out - defs[label])
            if out != live_out[label] or inn != live_in[label]:
                live_out[label] = out
                live_in[label] = inn
                changed = True

    return LivenessInfo(
        live_in={lb: frozenset(s) for lb, s in live_in.items()},
        live_out={lb: frozenset(s) for lb, s in live_out.items()},
        use={lb: frozenset(s) for lb, s in use.items()},
        defs={lb: frozenset(s) for lb, s in defs.items()},
    )
