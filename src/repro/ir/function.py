"""Functions: ordered collections of basic blocks plus a virtual-register pool."""

from __future__ import annotations

from typing import Iterator

from repro.errors import IRError
from repro.ir.basic_block import BasicBlock
from repro.isa.registers import GP, PR, Reg, RegClass


class Function:
    """A single function in layout order.

    Block order matters: it is the order used for linear-scan numbering and
    for deterministic iteration everywhere.  The first block is the entry.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: dict[str, BasicBlock] = {}
        self._next_vreg = {RegClass.GP: 0, RegClass.PR: 0}

    # -- blocks --------------------------------------------------------------
    def add_block(self, label: str) -> BasicBlock:
        if label in self._blocks:
            raise IRError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label)
        self._blocks[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self._blocks[label]
        except KeyError:
            raise IRError(f"no block {label!r} in {self.name}") from None

    def has_block(self, label: str) -> bool:
        return label in self._blocks

    @property
    def entry(self) -> BasicBlock:
        if not self._blocks:
            raise IRError(f"function {self.name} has no blocks")
        return next(iter(self._blocks.values()))

    def blocks(self) -> Iterator[BasicBlock]:
        return iter(self._blocks.values())

    def block_labels(self) -> list[str]:
        return list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    # -- registers -------------------------------------------------------------
    def new_gp(self) -> Reg:
        """Allocate a fresh virtual general-purpose register."""
        idx = self._next_vreg[RegClass.GP]
        self._next_vreg[RegClass.GP] = idx + 1
        return GP(idx)

    def new_pr(self) -> Reg:
        """Allocate a fresh virtual predicate register."""
        idx = self._next_vreg[RegClass.PR]
        self._next_vreg[RegClass.PR] = idx + 1
        return PR(idx)

    def new_reg_like(self, reg: Reg) -> Reg:
        """Fresh virtual register of the same class as ``reg``."""
        return self.new_gp() if reg.rclass is RegClass.GP else self.new_pr()

    def reserve_vregs(self, rclass: RegClass, count: int) -> None:
        """Bump the allocation counter past externally created registers."""
        self._next_vreg[rclass] = max(self._next_vreg[rclass], count)

    # -- copying -----------------------------------------------------------------
    def clone(self) -> "Function":
        """Deep structural copy with fresh instruction uids.

        ``dup_of`` links between replicas and originals are remapped onto the
        new uids so error-detection artifacts survive cloning.
        """
        other = Function(self.name)
        other._next_vreg = dict(self._next_vreg)
        uid_map: dict[int, int] = {}
        clones = []
        for block in self._blocks.values():
            nb = other.add_block(block.label)
            for insn in block.instructions:
                c = insn.clone()
                uid_map[insn.uid] = c.uid
                clones.append(c)
                nb.instructions.append(c)
        for c in clones:
            if c.dup_of is not None:
                c.dup_of = uid_map.get(c.dup_of, c.dup_of)
        return other

    # -- traversal helpers -------------------------------------------------------
    def all_instructions(self):
        """Yield ``(block, index, instruction)`` in layout order."""
        for block in self._blocks.values():
            for idx, insn in enumerate(block.instructions):
                yield block, idx, insn

    def instruction_count(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    def __str__(self) -> str:
        parts = [f"func {self.name} {{"]
        parts += [str(b) for b in self._blocks.values()]
        parts.append("}")
        return "\n".join(parts)

    __repr__ = __str__
