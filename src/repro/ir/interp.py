"""Sequential reference interpreter.

Executes a :class:`~repro.ir.program.Program` in program order.  It is

* the **functional reference model** the cycle-level VLIW executor is
  differentially tested against, and
* the **fault-injection engine**: Monte-Carlo campaigns need thousands of
  runs, for which bundle-level timing is irrelevant (outcome classification
  only needs architectural state plus a watchdog), so they run here.

For speed each instruction is pre-compiled into a closure over a flat
register list and a flat memory list; the interpreter sustains millions of
instructions per second, which makes 300-trial campaigns practical.

Fault models: the classic model (paper §IV-C) flips one bit of the output
register of the ``dyn_index``-th committed instruction.  :class:`FaultSpec`
generalizes this to a small taxonomy (see :mod:`repro.faults.models`):
adjacent-bit bursts (``width > 1``), control-flow corruption (``kind="cf"``:
invert a branch decision or redirect a jump), data-memory flips
(``kind="mem"``) and opcode substitution (``kind="opcode"``: the result is
recomputed with a different legal operation).  Multiple faults per run are
supported (the paper injects protected binaries at the original binary's
fault *rate*).
"""

from __future__ import annotations

import enum
import os
import sys
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable

from repro.errors import ArithmeticTrap, MemoryFault, SimError, SimTrap
from repro.ir.program import Program
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg, RegClass

_W = 1 << 64
_S = 1 << 63
_MASK = _W - 1

#: Default watchdog budget (dynamic instructions) when the caller gives none.
DEFAULT_MAX_STEPS = 50_000_000

#: Headroom words appended after the data segment when the caller does not
#: size memory explicitly (covers small hand-written tests).
DEFAULT_HEADROOM_WORDS = 64

#: Recognized execution backends.  ``"compiled"`` fuses each basic block
#: into one generated-Python superblock (see :mod:`repro.sim.compiled`);
#: ``"interp"`` dispatches the per-instruction closures one at a time and
#: is kept as the differential-equivalence reference.
VALID_BACKENDS = ("compiled", "interp")


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend choice: explicit arg > ``REPRO_SIM_BACKEND`` > compiled."""
    if backend is None:
        backend = os.environ.get("REPRO_SIM_BACKEND") or "compiled"
    if backend not in VALID_BACKENDS:
        raise SimError(
            f"unknown sim backend {backend!r} (expected one of {VALID_BACKENDS})"
        )
    return backend


class ExitKind(enum.Enum):
    """How a run ended — maps onto the paper's outcome taxonomy."""

    OK = "ok"  # reached HALT
    DETECTED = "detected"  # a check (CHKBR) fired
    EXCEPTION = "exception"  # architectural trap
    TIMEOUT = "timeout"  # watchdog expired

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExitKind.{self.name}"


@dataclass(frozen=True)
class RunResult:
    """Outcome of one interpreter run."""

    kind: ExitKind
    exit_code: int | None
    output: tuple[int, ...]
    dyn_instructions: int
    trap: str | None = None
    block_trace: tuple[str, ...] = ()

    @property
    def architectural_state(self) -> tuple:
        """The state compared against the golden run to call benign vs SDC."""
        return (self.kind, self.exit_code, self.output)


@dataclass(frozen=True)
class Snapshot:
    """Complete architectural state at a block boundary of a fault-free run.

    ``dyn`` is the number of instructions committed before ``label`` begins;
    restoring the snapshot and executing from ``label`` is bit-identical to
    executing the first ``dyn`` instructions from reset (checkpointed fault
    campaigns rely on this — see ``docs/fault_injection.md``).
    """

    dyn: int
    label: str
    regs: tuple[int, ...]
    mem: tuple[int, ...]
    output: tuple[int, ...]


class ConvergenceIndex:
    """Golden states a faulted run can be checked against mid-flight.

    Built from the golden run's :class:`Snapshot` list (see
    :mod:`repro.sim.batch`).  When :meth:`Interpreter.run` is given one via
    ``converge`` it compares the live registers and memory against the
    golden state each time execution crosses a snapshot boundary *after
    every fault has been applied*.  A match means the remainder of the run
    replays the golden continuation instruction for instruction — execution
    is a deterministic function of (label, registers, memory), and output
    is append-only — so the run finishes immediately with the golden final
    kind / exit code / dyn count and ``output = emitted-so-far + the golden
    output suffix past this boundary``.  A trial whose emitted output
    already equals the golden prefix gets the shared ``final`` object; one
    that diverged in output alone (the silent-corruption shape: a wrong
    value was printed, the architectural state healed) still exits early
    with its own synthesized output.  Purely an early exit either way: a
    run that never matches is byte-identical to one executed without the
    index, and a run that matches returns exactly what executing the
    suffix would have produced (asserted by the three-way parity tests).

    ``hits`` counts early exits taken against this index (telemetry only).
    """

    __slots__ = ("keys", "labels", "regs", "mems", "out_lens", "final", "hits")

    def __init__(self, snapshots: list["Snapshot"], final: "RunResult") -> None:
        self.keys = [s.dyn for s in snapshots]
        self.labels = [s.label for s in snapshots]
        # Stored as lists so the hot-loop comparison against the live
        # register/memory lists is a single C-level == with first-mismatch
        # early exit (no per-check tuple conversion).
        self.regs = [list(s.regs) for s in snapshots]
        self.mems = [list(s.mem) for s in snapshots]
        #: Golden output length at each boundary — the split point for the
        #: synthesized output of an output-diverged but state-converged run.
        self.out_lens = [len(s.output) for s in snapshots]
        self.final = RunResult(
            kind=final.kind,
            exit_code=final.exit_code,
            output=final.output,
            dyn_instructions=final.dyn_instructions,
            trap=final.trap,
            block_trace=(),
        )
        self.hits = 0


class TraceGuide:
    """Golden-trace-guided execution plan for post-fault suffixes.

    Fault trials overwhelmingly keep following the golden control flow even
    after their architectural state diverged: benign faults rejoin it,
    exception trials follow it until the trap, and silent corruption rides
    along it for most of the suffix (the corrupted value flows through the
    same branches).  The guide lets :meth:`Interpreter.run` execute such
    suffixes as a tight loop over the recorded golden block trace — one
    pre-fused callable plus one next-label comparison per block visit —
    instead of the general dispatch loop, peeling back to it the moment a
    block's actual jump disagrees with the trace.

    Misprediction cannot corrupt a run: every callable in ``pairs`` is the
    compiled body for the label recorded at that trace position, so any
    visit the guided loop executes is architecturally exact regardless of
    how the run is aligned against the trace; the trace only *predicts* the
    next label.  Likewise the committed-instruction count stays exact
    because ``vds`` deltas along the trace are the block lengths of the
    visited labels.  Guided chunks stop at golden snapshot boundaries
    (``key_visits``) so the convergence early exit fires at exactly the
    positions the scalar loop would check, and a chunk is only entered when
    it fits under the watchdog budget, so timeout accounting is untouched.

    ``visits`` counts block visits executed under guidance (telemetry).
    """

    __slots__ = ("pairs", "vds", "labels", "occ", "key_visits", "last",
                 "visits")

    def __init__(
        self,
        interp: "Interpreter",
        golden: "RunResult",
        visit_dyn_start,
        snap_keys: list[int],
    ) -> None:
        fused = interp._fused
        if fused is None:
            raise SimError("trace guide requires a fused (compiled) backend")
        trace = golden.block_trace
        if not trace:
            raise SimError("trace guide requires a recorded golden trace")
        n = len(trace)
        # Interning lets the guided loop's `is` comparison short-circuit
        # the common predicted-correctly case (generated code constants
        # that look like identifiers are interned by CPython).
        labels = [sys.intern(lb) for lb in trace]
        self.labels = labels
        self.pairs = [(fused[labels[i]], labels[i + 1]) for i in range(n - 1)]
        vds = [int(x) for x in visit_dyn_start]
        if len(vds) != n:
            raise SimError("visit table does not match the golden trace")
        self.vds = vds
        occ: dict[str, list[int]] = {}
        for i, lb in enumerate(labels):
            occ.setdefault(lb, []).append(i)
        self.occ = occ
        kv: list[int] = []
        for key in snap_keys:
            j = bisect_left(vds, key)
            if j < n and vds[j] == key:
                kv.append(j)
        self.key_visits = kv
        self.last = n - 1
        self.visits = 0


#: Recognized :attr:`FaultSpec.kind` values.
FAULT_KINDS = ("reg", "cf", "mem", "opcode")

#: Alternate operations an ``opcode`` fault may substitute for the original
#: one (applied to the raw source values; the result is masked to 64 bits).
#: The table is part of the fault model's determinism contract — append only.
ALT_OPS: tuple = (
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a & b,
    lambda a, b: a | b,
    lambda a, b: a ^ b,
    lambda a, b: a * b,
)


@dataclass(frozen=True)
class FaultSpec:
    """One transient fault, applied after dynamic instruction ``dyn_index``.

    ``dyn_index`` counts committed instructions from 0.  ``kind`` selects the
    corruption applied at that point:

    ``"reg"`` (default)
        Flip ``width`` adjacent bits of the instruction's output register
        starting at ``bit`` (``width=1`` is the paper's §IV-C model;
        ``width`` 2–4 models a multi-bit burst).  If the instruction writes
        no register the flip lands in a latch the program never reads and is
        dropped (the campaigns sample only output-producing instructions).
        Predicate outputs invert regardless of ``bit``/``width`` (they hold
        a single bit).
    ``"cf"``
        Corrupt the control transfer the instruction performed: a
        conditional branch takes the *other* target (``arg is None``) and a
        jump is redirected to the block label ``arg``.  Dropped if the
        instruction was not a branch/jump or ``arg`` names no block.
    ``"mem"``
        Flip ``bit`` of the data-memory word at address ``arg`` (dropped if
        the address is outside the valid space — ECC on the periphery).
    ``"opcode"``
        Replace the instruction's result with the one another legal
        operation (``ALT_OPS[arg % len(ALT_OPS)]``) produces from its source
        values; source-less instructions degrade to a ``bit`` flip.
    """

    dyn_index: int
    bit: int = 0
    kind: str = "reg"
    width: int = 1
    arg: int | str | None = None

    def __post_init__(self) -> None:
        if self.dyn_index < 0:
            raise ValueError("dyn_index must be >= 0")
        if not 0 <= self.bit < 64:
            raise ValueError("bit must be in [0, 64)")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 1 <= self.width <= 4:
            raise ValueError("width must be in [1, 4]")
        if self.bit + self.width > 64:
            raise ValueError("bit + width must be <= 64")

    @property
    def mask(self) -> int:
        """The XOR mask a ``reg`` fault applies to the output register."""
        return ((1 << self.width) - 1) << self.bit


_DETECT = "__detect__"


class _CompiledBlock:
    __slots__ = (
        "label", "fns", "dest_slots", "dest_is_pr", "src_slots", "targets", "n"
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.fns: list[Callable[[], object]] = []
        self.dest_slots: list[int] = []
        self.dest_is_pr: list[bool] = []
        self.src_slots: list[tuple[int, ...]] = []  # for opcode faults
        self.targets: list[tuple[str, ...]] = []  # for cf faults
        self.n = 0


def _signed_const(x: int) -> int:
    x &= _MASK
    return x - _W if x & _S else x


def _div_s(x: int, y: int) -> int:
    if y == 0:
        raise ArithmeticTrap("division by zero")
    q = abs(x) // abs(y)
    return (-q if (x < 0) != (y < 0) else q) & _MASK


def _rem_s(x: int, y: int) -> int:
    if y == 0:
        raise ArithmeticTrap("remainder by zero")
    q = abs(x) // abs(y)
    q = -q if (x < 0) != (y < 0) else q
    return (x - q * y) & _MASK


def _bin(fn_signed=None, fn_raw=None):
    """Factory-of-factories for two-input ALU/compare opcodes.

    ``fn_raw`` operates on the raw unsigned representation (correct for ops
    whose bit pattern is sign-agnostic); ``fn_signed`` gets two's-complement
    ints and must mask its own result.
    """

    def build(R: list[int], d: int, a: int, b: int | None, imm: int | None):
        if fn_raw is not None:
            if b is None:
                k = imm & _MASK

                def f_ri() -> None:
                    R[d] = fn_raw(R[a], k)

                return f_ri

            def f_rr() -> None:
                R[d] = fn_raw(R[a], R[b])

            return f_rr

        if b is None:
            k = _signed_const(imm)

            def g_ri() -> None:
                x = R[a]
                R[d] = fn_signed(x - _W if x & _S else x, k)

            return g_ri

        def g_rr() -> None:
            x, y = R[a], R[b]
            R[d] = fn_signed(x - _W if x & _S else x, y - _W if y & _S else y)

        return g_rr

    return build


_BIN_FACTORY = {
    Opcode.ADD: _bin(fn_raw=lambda x, y: (x + y) & _MASK),
    Opcode.SUB: _bin(fn_raw=lambda x, y: (x - y) & _MASK),
    Opcode.MUL: _bin(fn_raw=lambda x, y: (x * y) & _MASK),
    Opcode.DIV: _bin(fn_signed=_div_s),
    Opcode.REM: _bin(fn_signed=_rem_s),
    Opcode.AND: _bin(fn_raw=lambda x, y: x & y),
    Opcode.OR: _bin(fn_raw=lambda x, y: x | y),
    Opcode.XOR: _bin(fn_raw=lambda x, y: x ^ y),
    Opcode.SHL: _bin(fn_raw=lambda x, y: (x << (y & 63)) & _MASK),
    Opcode.SHRL: _bin(fn_raw=lambda x, y: x >> (y & 63)),
    Opcode.SHRA: _bin(fn_signed=lambda x, y: (x >> (y & 63)) & _MASK),
    Opcode.MIN: _bin(fn_signed=lambda x, y: min(x, y) & _MASK),
    Opcode.MAX: _bin(fn_signed=lambda x, y: max(x, y) & _MASK),
    Opcode.CMPEQ: _bin(fn_signed=lambda x, y: 1 if x == y else 0),
    Opcode.CMPNE: _bin(fn_signed=lambda x, y: 1 if x != y else 0),
    Opcode.CMPLT: _bin(fn_signed=lambda x, y: 1 if x < y else 0),
    Opcode.CMPLE: _bin(fn_signed=lambda x, y: 1 if x <= y else 0),
    Opcode.CMPGT: _bin(fn_signed=lambda x, y: 1 if x > y else 0),
    Opcode.CMPGE: _bin(fn_signed=lambda x, y: 1 if x >= y else 0),
}


def _un(fn_signed):
    def build(R: list[int], d: int, a: int):
        def f() -> None:
            x = R[a]
            R[d] = fn_signed(x - _W if x & _S else x) & _MASK

        return f

    return build


_UN_FACTORY = {
    Opcode.NEG: _un(lambda x: -x),
    Opcode.ABS: _un(abs),
    Opcode.NOT: _un(lambda x: ~x),
}


class Interpreter:
    """Compile once, run many times (state is reset at the top of each run)."""

    def __init__(
        self,
        program: Program,
        mem_words: int | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        frame_words: int = 0,
        backend: str | None = None,
    ) -> None:
        self.program = program
        layout = program.layout()
        self.frame_base = layout.spill_base
        if mem_words is None:
            mem_words = layout.data_end + frame_words + DEFAULT_HEADROOM_WORDS
        if mem_words < layout.data_end + frame_words:
            raise SimError(
                f"mem_words={mem_words} smaller than data+frame segment "
                f"{layout.data_end + frame_words}"
            )
        self.mem_words = mem_words
        self.max_steps = max_steps
        self._init_mem = program.initial_memory_words()
        self._entry = program.main.entry.label

        # Assign a flat slot to every register before building closures.
        self._slot_of: dict[Reg, int] = {}
        for block in program.main.blocks():
            for insn in block.instructions:
                for r in (*insn.dests, *insn.srcs):
                    self._slot_of.setdefault(r, len(self._slot_of))
        self._R: list[int] = [0] * max(1, len(self._slot_of))
        self._M: list[int] = [0] * mem_words
        self._O: list[int] = []

        self._blocks: dict[str, _CompiledBlock] = {}
        for block in program.main.blocks():
            cb = _CompiledBlock(block.label)
            for insn in block.instructions:
                cb.fns.append(self._make_closure(insn))
                if insn.dests:
                    cb.dest_slots.append(self._slot_of[insn.dests[0]])
                    cb.dest_is_pr.append(insn.dests[0].rclass is RegClass.PR)
                else:
                    cb.dest_slots.append(-1)
                    cb.dest_is_pr.append(False)
                cb.src_slots.append(tuple(self._slot_of[r] for r in insn.srcs))
                cb.targets.append(
                    tuple(insn.targets)
                    if insn.opcode in (Opcode.JMP, Opcode.BRT, Opcode.BRF)
                    else ()
                )
            cb.n = len(cb.fns)
            self._blocks[block.label] = cb

        self.backend = resolve_backend(backend)
        self._fused: dict[str, Callable[[], object]] | None = None
        if self.backend == "compiled":
            # Imported lazily: repro.sim.compiled imports helpers from this
            # module, so a top-level import would be circular.
            from repro.sim.compiled import fuse_functional_blocks

            self._fused = fuse_functional_blocks(self)

    # -- closure construction ---------------------------------------------------
    def _make_closure(self, insn) -> Callable[[], object]:
        R, M, O = self._R, self._M, self._O
        mem_words = self.mem_words
        op = insn.opcode
        srcs = [self._slot_of[r] for r in insn.srcs]
        dest = self._slot_of[insn.dests[0]] if insn.dests else -1
        imm = insn.imm

        if op is Opcode.MOVI:
            v, d = imm & _MASK, dest

            def f_movi() -> None:
                R[d] = v

            return f_movi

        if op is Opcode.MOV or op is Opcode.PMOV:
            a, d = srcs[0], dest

            def f_mov() -> None:
                R[d] = R[a]

            return f_mov

        if op in _BIN_FACTORY:
            if imm is not None:
                return _BIN_FACTORY[op](R, dest, srcs[0], None, imm)
            return _BIN_FACTORY[op](R, dest, srcs[0], srcs[1], None)

        if op in _UN_FACTORY:
            return _UN_FACTORY[op](R, dest, srcs[0])

        if op is Opcode.SELECT:
            d, p, a, b = dest, srcs[0], srcs[1], srcs[2]

            def f_select() -> None:
                R[d] = R[a] if R[p] else R[b]

            return f_select

        if op is Opcode.PNE:
            d, a, b = dest, srcs[0], srcs[1]

            def f_pne() -> None:
                R[d] = 1 if R[a] != R[b] else 0

            return f_pne

        if op is Opcode.LOAD:
            d, a, off = dest, srcs[0], imm

            def f_load() -> None:
                addr = (R[a] + off) & _MASK
                if addr < 1 or addr >= mem_words:
                    raise MemoryFault(f"load from invalid address {addr}")
                R[d] = M[addr]

            return f_load

        if op is Opcode.STORE:
            a, v, off = srcs[0], srcs[1], imm

            def f_store() -> None:
                addr = (R[a] + off) & _MASK
                if addr < 1 or addr >= mem_words:
                    raise MemoryFault(f"store to invalid address {addr}")
                M[addr] = R[v]

            return f_store

        if op is Opcode.LOADFP:
            d = dest
            addr = self.frame_base + imm
            if not 1 <= addr < mem_words:
                raise SimError(f"frame slot {imm} outside memory")

            def f_loadfp() -> None:
                R[d] = M[addr]

            return f_loadfp

        if op is Opcode.STOREFP:
            a = srcs[0]
            addr = self.frame_base + imm
            if not 1 <= addr < mem_words:
                raise SimError(f"frame slot {imm} outside memory")

            def f_storefp() -> None:
                M[addr] = R[a]

            return f_storefp

        if op is Opcode.OUT:
            a = srcs[0]

            def f_out() -> None:
                O.append(R[a])

            return f_out

        if op is Opcode.JMP:
            target = insn.targets[0]

            def f_jmp() -> str:
                return target

            return f_jmp

        if op is Opcode.BRT:
            p = srcs[0]
            taken, fall = insn.targets

            def f_brt() -> str:
                return taken if R[p] else fall

            return f_brt

        if op is Opcode.BRF:
            p = srcs[0]
            taken, fall = insn.targets

            def f_brf() -> str:
                return fall if R[p] else taken

            return f_brf

        if op is Opcode.HALT:
            result = ("halt", imm)

            def f_halt() -> tuple:
                return result

            return f_halt

        if op is Opcode.CHKBR:
            p = srcs[0]

            def f_chkbr() -> str | None:
                return _DETECT if R[p] else None

            return f_chkbr

        if op is Opcode.NOP:
            def f_nop() -> None:
                return None

            return f_nop

        raise SimError(f"cannot compile opcode {op}")  # pragma: no cover

    # -- execution ---------------------------------------------------------------
    def reset_state(self) -> None:
        """Zero registers and memory, apply global initializers, clear output."""
        R, M = self._R, self._M
        for i in range(len(R)):
            R[i] = 0
        for i in range(len(M)):
            M[i] = 0
        for addr, value in self._init_mem.items():
            M[addr] = value
        self._O.clear()

    def restore(self, snap: Snapshot) -> None:
        """Load architectural state from a :class:`Snapshot`."""
        if len(snap.regs) != len(self._R) or len(snap.mem) != len(self._M):
            raise SimError("snapshot shape does not match this interpreter")
        self._R[:] = snap.regs
        self._M[:] = snap.mem
        self._O[:] = snap.output

    def run(
        self,
        faults: tuple[FaultSpec, ...] = (),
        max_steps: int | None = None,
        record_trace: bool = False,
        snapshot_every: int | None = None,
        snapshot_sink: list[Snapshot] | None = None,
        resume_from: Snapshot | None = None,
        converge: ConvergenceIndex | None = None,
        guide: TraceGuide | None = None,
    ) -> RunResult:
        """Execute from the entry block and classify the ending.

        ``snapshot_every``/``snapshot_sink`` capture a :class:`Snapshot` at
        the first block boundary at or past each multiple of
        ``snapshot_every`` committed instructions (golden-run side of
        checkpointed injection).  ``resume_from`` starts execution from a
        previously captured snapshot instead of reset state; ``faults``
        whose ``dyn_index`` precedes the snapshot would be silently skipped,
        so callers must pick a snapshot at or before the earliest fault.
        The returned ``dyn_instructions`` stays absolute (counted from the
        true program start), keeping outcome classification and detection
        latency identical to a replay from zero.

        ``converge`` (a :class:`ConvergenceIndex`) enables the batched
        engine's golden re-convergence early exit: once every fault has
        been applied, crossing a golden snapshot boundary with state equal
        to the golden state at that point returns the golden final result
        immediately — the continuation would replay the golden run, so the
        returned :class:`RunResult` is identical to executing the suffix.

        ``guide`` (a :class:`TraceGuide`) turns the post-fault suffix into
        trace-guided execution: once every fault is applied, block visits
        that keep matching the golden control flow run through a tight
        chunked loop instead of the general dispatch loop, falling back
        here the moment a jump disagrees with the trace.  Purely a faster
        engine for the same instruction stream (see :class:`TraceGuide`);
        ignored on unfused backends and for trace-recording/snapshotting
        runs, which need per-block bookkeeping.
        """
        R, M, O = self._R, self._M, self._O
        if resume_from is None:
            self.reset_state()
            dyn = 0
            label = self._entry
        else:
            self.restore(resume_from)
            dyn = resume_from.dyn
            label = resume_from.label

        budget = self.max_steps if max_steps is None else max_steps
        fault_list = sorted(faults, key=lambda f: f.dyn_index)
        fi = 0
        # Sentinel -1 never equals a (1-based) committed count.
        nf = fault_list[0].dyn_index + 1 if fault_list else -1

        trace: list[str] | None = [] if record_trace else None
        blocks = self._blocks
        fused = self._fused

        next_mark = -1
        if snapshot_sink is not None and snapshot_every is not None:
            if snapshot_every < 1:
                raise SimError("snapshot_every must be >= 1")
            next_mark = snapshot_every

        g_pairs = None
        g_vds = g_labels = g_occ = g_keyvisits = None
        g_nkeys = g_last = 0
        g_floor = g_fails = g_skip = 0
        if (
            guide is not None
            and trace is None
            and next_mark < 0
            and fused is not None
        ):
            g_pairs = guide.pairs
            g_vds = guide.vds
            g_labels = guide.labels
            g_occ = guide.occ
            g_keyvisits = guide.key_visits
            g_nkeys = len(g_keyvisits)
            g_last = guide.last

        conv_keys = conv_n = None
        ci = 0
        if converge is not None:
            conv_keys = converge.keys
            conv_n = len(conv_keys)
            # Boundaries at or before the resume point are the pre-fault
            # prefix — never candidates.
            while ci < conv_n and conv_keys[ci] <= dyn:
                ci += 1

        def finish(kind: ExitKind, code: int | None, trap: str | None) -> RunResult:
            return RunResult(
                kind,
                code,
                tuple(O),
                dyn,
                trap=trap,
                block_trace=tuple(trace) if trace is not None else (),
            )

        try:
            while True:
                cb = blocks[label]
                if trace is not None:
                    trace.append(label)
                if next_mark >= 0 and dyn >= next_mark:
                    snapshot_sink.append(
                        Snapshot(dyn, label, tuple(R), tuple(M), tuple(O))
                    )
                    next_mark = (dyn // snapshot_every + 1) * snapshot_every
                if conv_keys is not None and nf < 0:
                    # All faults applied: crossing a golden boundary with
                    # golden-equal registers and memory means the suffix
                    # replays the golden continuation verbatim — finish with
                    # the golden final result, splicing the golden output
                    # suffix onto whatever this run has emitted so far.
                    while ci < conv_n and conv_keys[ci] < dyn:
                        ci += 1
                    if ci < conv_n and conv_keys[ci] == dyn:
                        j = ci
                        ci += 1
                        if (
                            converge.labels[j] == label
                            and R == converge.regs[j]
                            and M == converge.mems[j]
                        ):
                            converge.hits += 1
                            final = converge.final
                            n_out = converge.out_lens[j]
                            if len(O) == n_out and O == list(final.output[:n_out]):
                                return final
                            return RunResult(
                                final.kind,
                                final.exit_code,
                                tuple(O) + final.output[n_out:],
                                final.dyn_instructions,
                                trap=final.trap,
                                block_trace=(),
                            )
                if g_skip and nf < 0:
                    g_skip -= 1
                if g_pairs is not None and nf < 0 and g_skip == 0:
                    # Trace-guided fast path: align against the golden
                    # block trace and execute visits in chunks while the
                    # control flow keeps agreeing with it.
                    gi = -1
                    off = 0
                    v = bisect_left(g_vds, dyn, g_floor)
                    if v < g_last and g_vds[v] == dyn and g_labels[v] == label:
                        gi = v
                    else:
                        # Control flow diverged from the trace earlier (or
                        # skipped/repeated visits): re-sync at the next
                        # occurrence of this label.  A wrong alignment only
                        # costs prediction accuracy, never correctness.
                        loc = g_occ.get(label)
                        if loc is not None:
                            k = bisect_left(loc, g_floor)
                            if k < len(loc) and loc[k] < g_last:
                                gi = loc[k]
                                off = dyn - g_vds[gi]
                    if gi < 0:
                        # No trace position left for this label: the run
                        # has left the golden path for good (or overran
                        # its occurrences).  Back off exponentially so a
                        # permanently diverged run stops paying the sync
                        # probe on every block.
                        g_fails += 1
                        g_skip = min(128, 1 << g_fails)
                    else:
                        if off == 0:
                            kk = bisect_right(g_keyvisits, gi)
                            stop = (
                                g_keyvisits[kk] if kk < g_nkeys else g_last
                            )
                        else:
                            # Misaligned runs cannot hit a convergence key
                            # (guarded by exact dyn equality), so chunk by
                            # a fixed stride instead.
                            stop = min(gi + 2048, g_last)
                        if g_vds[stop] + off > budget:
                            # Near the watchdog budget: hand over to the
                            # scalar loop's exact per-block accounting.
                            g_pairs = None
                        else:
                            i = gi
                            res = None
                            try:
                                for fn, exp in g_pairs[gi:stop]:
                                    r = fn()
                                    if r is not exp and r != exp:
                                        res = r
                                        break
                                    i += 1
                            except SimTrap:
                                dyn = g_vds[i] + off
                                raise
                            if res is None:
                                guide.visits += i - gi
                                g_fails = 0
                                dyn = g_vds[stop] + off
                                label = g_labels[stop]
                                g_floor = stop
                                continue
                            # Visit i executed in full; its jump left the
                            # trace (or ended the run).
                            guide.visits += i - gi + 1
                            if i - gi + 1 >= 4:
                                g_fails = 0
                            else:
                                # The alignment guess barely predicted:
                                # treat it like a failed probe.
                                g_fails += 1
                                g_skip = min(128, 1 << g_fails)
                            dyn = g_vds[i + 1] + off
                            g_floor = i + 1
                            if res is _DETECT:
                                return finish(ExitKind.DETECTED, None, None)
                            if type(res) is tuple:
                                return finish(ExitKind.OK, res[1], None)
                            if type(res) is not str:  # pragma: no cover
                                raise SimError(
                                    f"block {g_labels[i]} fell through"
                                )
                            label = res
                            continue
                if dyn + cb.n > budget:
                    return finish(ExitKind.TIMEOUT, None, "watchdog")
                jump: object = None
                if nf < 0 or nf > dyn + cb.n:
                    # Fast path: no fault lands during this block visit.
                    if fused is not None:
                        jump = fused[label]()
                    else:
                        for fn in cb.fns:
                            res = fn()
                            if res is not None:
                                jump = res
                                break
                    dyn += cb.n
                else:
                    dest_slots = cb.dest_slots
                    dest_is_pr = cb.dest_is_pr
                    start = dyn
                    for i, fn in enumerate(cb.fns):
                        res = fn()
                        dyn += 1
                        if dyn == nf:
                            spec = fault_list[fi]
                            kind = spec.kind
                            if kind == "reg":
                                ds = dest_slots[i]
                                if ds >= 0:
                                    if dest_is_pr[i]:
                                        R[ds] ^= 1
                                    else:
                                        R[ds] ^= spec.mask
                            elif kind == "mem":
                                addr = spec.arg
                                if type(addr) is int and 1 <= addr < len(M):
                                    M[addr] ^= 1 << spec.bit
                            elif kind == "cf":
                                if (
                                    type(res) is str
                                    and res is not _DETECT
                                    and res in blocks
                                ):
                                    if spec.arg is None:
                                        tgts = cb.targets[i]
                                        if len(tgts) == 2:
                                            # invert the branch decision
                                            res = (
                                                tgts[0]
                                                if res == tgts[1]
                                                else tgts[1]
                                            )
                                    elif spec.arg in blocks:
                                        res = spec.arg
                            else:  # opcode substitution
                                ds = dest_slots[i]
                                if ds >= 0:
                                    slots = cb.src_slots[i]
                                    if slots:
                                        a = R[slots[0]]
                                        b = R[slots[1]] if len(slots) > 1 else a
                                        alt = ALT_OPS[
                                            (spec.arg or 0) % len(ALT_OPS)
                                        ]
                                        v = alt(a, b) & _MASK
                                        R[ds] = v & 1 if dest_is_pr[i] else v
                                    elif dest_is_pr[i]:
                                        R[ds] ^= 1
                                    else:
                                        R[ds] ^= 1 << spec.bit
                            fi += 1
                            nf = (
                                fault_list[fi].dyn_index + 1
                                if fi < len(fault_list)
                                else -1
                            )
                        if res is not None:
                            jump = res
                            break
                    if jump is None and dyn != start + cb.n:  # pragma: no cover
                        raise SimError("block accounting error")

                if jump is None:
                    raise SimError(f"block {label} fell through")  # pragma: no cover
                if jump is _DETECT:
                    return finish(ExitKind.DETECTED, None, None)
                if type(jump) is tuple:
                    return finish(ExitKind.OK, jump[1], None)
                label = jump
        except SimTrap as trap:
            return finish(ExitKind.EXCEPTION, None, trap.kind)
