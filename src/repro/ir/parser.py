"""Parser for the textual IR format emitted by :mod:`repro.ir.printer`.

Exists mainly for tests (round-trip property tests) and for writing small IR
snippets by hand; the workloads use the minic front end instead.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.ir.basic_block import DETECT_LABEL
from repro.ir.function import Function
from repro.ir.program import GlobalArray, Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import MNEMONIC_TO_OPCODE
from repro.isa.registers import Reg, RegClass

_REG_RE = re.compile(r"^(?:v(r|p)(\d+)|c(\d+)\.(r|p)(\d+))$")
_GLOBAL_RE = re.compile(
    r"^global\s+(\w+)\s*\[\s*(\d+)\s*\]\s*(?:=\s*\{(.*)\}\s*)?$"
)
_LABEL_RE = re.compile(r"^(\w+):$")
_FUNC_RE = re.compile(r"^func\s+(\w+)\s*\{$")

_ROLE_TAGS = {role.value: role for role in Role if role is not Role.ORIG}


def _parse_reg(token: str, line_no: int) -> Reg:
    m = _REG_RE.match(token)
    if not m:
        raise ParseError(f"bad register {token!r}", line_no)
    if m.group(1):  # virtual
        rclass = RegClass.GP if m.group(1) == "r" else RegClass.PR
        return Reg(rclass, int(m.group(2)))
    rclass = RegClass.GP if m.group(4) == "r" else RegClass.PR
    return Reg(rclass, int(m.group(5)), virtual=False, cluster=int(m.group(3)))


def parse_instruction(text: str, line_no: int = 0) -> Instruction:
    """Parse one instruction line (without label or braces)."""
    parts = text.split("!")
    body, tags = parts[0].strip(), [t.strip() for t in parts[1:]]
    pieces = body.split(None, 1)
    if not pieces:
        raise ParseError("empty instruction", line_no)
    mnemonic = pieces[0]
    opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
    if opcode is None:
        raise ParseError(f"unknown mnemonic {mnemonic!r}", line_no)

    regs: list[Reg] = []
    imm: int | None = None
    targets: list[str] = []
    if len(pieces) > 1:
        for token in (t.strip() for t in pieces[1].split(",")):
            if not token:
                raise ParseError("empty operand", line_no)
            if token.startswith("#"):
                try:
                    imm = int(token[1:], 0)
                except ValueError:
                    raise ParseError(f"bad immediate {token!r}", line_no) from None
            elif token.startswith("@"):
                targets.append(token[1:])
            else:
                regs.append(_parse_reg(token, line_no))

    from repro.isa.opcodes import OP_INFO

    info = OP_INFO[opcode]
    dests: tuple[Reg, ...] = ()
    srcs: tuple[Reg, ...] = tuple(regs)
    if info.out_class is not None:
        if not regs:
            raise ParseError(f"{mnemonic} needs a destination", line_no)
        dests, srcs = (regs[0],), tuple(regs[1:])

    role = Role.ORIG
    from_library = False
    cluster: int | None = None
    dup_of: int | None = None
    for tag in tags:
        if tag in _ROLE_TAGS:
            role = _ROLE_TAGS[tag]
        elif tag == "lib":
            from_library = True
        elif tag.startswith("cl") and tag[2:].isdigit():
            cluster = int(tag[2:])
        elif tag.startswith("of") and tag[2:].isdigit():
            dup_of = int(tag[2:])
        else:
            raise ParseError(f"unknown tag !{tag}", line_no)

    try:
        return Instruction(
            opcode,
            dests=dests,
            srcs=srcs,
            imm=imm,
            targets=tuple(targets),
            role=role,
            from_library=from_library,
            cluster=cluster,
            dup_of=dup_of,
        )
    except Exception as exc:  # IRError from shape validation
        raise ParseError(f"{exc}", line_no) from exc


def parse_program(text: str) -> Program:
    """Parse a full ``program { ... }`` document."""
    lines = [(i + 1, raw.split(";")[0].strip()) for i, raw in enumerate(text.splitlines())]
    lines = [(n, s) for n, s in lines if s]
    pos = 0

    def expect(pattern: str) -> None:
        nonlocal pos
        if pos >= len(lines) or lines[pos][1] != pattern:
            at = lines[pos] if pos < len(lines) else (0, "<eof>")
            raise ParseError(f"expected {pattern!r}, got {at[1]!r}", at[0])
        pos += 1

    expect("program {")
    globals_: list[GlobalArray] = []
    while pos < len(lines) and lines[pos][1].startswith("global"):
        line_no, line = lines[pos]
        m = _GLOBAL_RE.match(line)
        if not m:
            raise ParseError(f"bad global declaration {line!r}", line_no)
        name, size = m.group(1), int(m.group(2))
        init: tuple[int, ...] = ()
        if m.group(3) is not None:
            body = m.group(3).strip()
            if body:
                try:
                    init = tuple(int(v.strip(), 0) for v in body.split(","))
                except ValueError:
                    raise ParseError("bad global initializer", line_no) from None
        globals_.append(GlobalArray(name, size, init))
        pos += 1

    functions: list[Function] = []
    while pos < len(lines) and lines[pos][1] != "}":
        line_no, line = lines[pos]
        m = _FUNC_RE.match(line)
        if not m:
            raise ParseError(f"expected func, got {line!r}", line_no)
        function = Function(m.group(1))
        pos += 1

        current = None
        max_vreg = {RegClass.GP: 0, RegClass.PR: 0}
        while pos < len(lines) and lines[pos][1] != "}":
            line_no, line = lines[pos]
            lm = _LABEL_RE.match(line)
            if lm:
                label = lm.group(1)
                if label == DETECT_LABEL:
                    raise ParseError(f"{DETECT_LABEL} is reserved", line_no)
                current = function.add_block(label)
            else:
                if current is None:
                    raise ParseError("instruction before first label", line_no)
                insn = parse_instruction(line, line_no)
                for r in (*insn.dests, *insn.srcs):
                    if r.virtual:
                        max_vreg[r.rclass] = max(max_vreg[r.rclass], r.index + 1)
                current.instructions.append(insn)
            pos += 1
        expect("}")
        if len(function) == 0:
            raise ParseError(f"function {function.name!r} has no blocks", line_no)
        for rclass, count in max_vreg.items():
            function.reserve_vregs(rclass, count)
        functions.append(function)
    expect("}")
    if not functions:
        raise ParseError("missing func", 0)

    program = Program(functions[0], globals_)
    for fn in functions[1:]:
        program.add_function(fn)
    return program
