"""Control-flow graph queries over a :class:`Function`.

The CFG is rebuilt on demand (functions are small); it offers successor /
predecessor maps, reachability, and reverse-postorder — everything the
dataflow analyses and the verifier need.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.function import Function


class CFG:
    """Immutable snapshot of a function's control-flow graph."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.succs: dict[str, tuple[str, ...]] = {}
        self.preds: dict[str, list[str]] = {b.label: [] for b in function.blocks()}
        for block in function.blocks():
            targets = block.successor_labels()
            for t in targets:
                if not function.has_block(t):
                    raise IRError(
                        f"block {block.label} branches to unknown label {t!r}"
                    )
            self.succs[block.label] = targets
            for t in targets:
                self.preds[t].append(block.label)

    @property
    def entry_label(self) -> str:
        return self.function.entry.label

    def reverse_postorder(self) -> list[str]:
        """Reverse postorder from the entry (unreachable blocks excluded)."""
        visited: set[str] = set()
        postorder: list[str] = []
        # Iterative DFS to avoid recursion limits on long chains.
        stack: list[tuple[str, int]] = [(self.entry_label, 0)]
        visited.add(self.entry_label)
        while stack:
            label, child = stack[-1]
            succs = self.succs[label]
            if child < len(succs):
                stack[-1] = (label, child + 1)
                nxt = succs[child]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                postorder.append(label)
        return postorder[::-1]

    def reachable(self) -> set[str]:
        return set(self.reverse_postorder())

    def unreachable(self) -> set[str]:
        return {b.label for b in self.function.blocks()} - self.reachable()

    def dominators(self) -> dict[str, set[str]]:
        """dom(b): blocks dominating b (iterative dataflow; includes b)."""
        rpo = self.reverse_postorder()
        all_blocks = set(rpo)
        dom: dict[str, set[str]] = {lb: set(all_blocks) for lb in rpo}
        dom[self.entry_label] = {self.entry_label}
        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == self.entry_label:
                    continue
                preds = [p for p in self.preds[label] if p in all_blocks]
                new = set(all_blocks)
                for p in preds:
                    new &= dom[p]
                new.add(label)
                if new != dom[label]:
                    dom[label] = new
                    changed = True
        return dom

    def natural_loops(self) -> list[tuple[str, frozenset[str]]]:
        """(header, body-blocks) for every back edge; bodies include header."""
        loops: list[tuple[str, frozenset[str]]] = []
        for u, v in sorted(self.back_edges()):
            members = {v}
            stack = []
            if u != v:
                members.add(u)
                stack.append(u)
            while stack:
                node = stack.pop()
                for p in self.preds[node]:
                    if p not in members:
                        members.add(p)
                        stack.append(p)
            loops.append((v, frozenset(members)))
        return loops

    def loop_depths(self) -> dict[str, int]:
        """Number of natural loops each block belongs to (0 = straight-line).

        For every back edge (u, v), the natural loop body is v plus all
        blocks that reach u without passing through v.  Exact for the
        reducible CFGs our front end emits.
        """
        depths = {b.label: 0 for b in self.function.blocks()}
        for u, v in self.back_edges():
            # Standard natural-loop body: walk predecessors backward from u,
            # stopping at the header v (v dominates u in reducible CFGs, so
            # every entry into the loop passes through it).
            members = {v}
            stack = []
            if u != v:
                members.add(u)
                stack.append(u)
            while stack:
                node = stack.pop()
                for p in self.preds[node]:
                    if p not in members:
                        members.add(p)
                        stack.append(p)
            for label in members:
                depths[label] += 1
        return depths

    def back_edges(self) -> set[tuple[str, str]]:
        """Edges (u, v) where v dominates-ish u in DFS terms (loop edges).

        Uses the DFS ancestor criterion, which is exact for reducible CFGs
        (all CFGs our front end emits are reducible).
        """
        color: dict[str, int] = {}
        edges: set[tuple[str, str]] = set()
        stack: list[tuple[str, int]] = [(self.entry_label, 0)]
        color[self.entry_label] = 1
        while stack:
            label, child = stack[-1]
            succs = self.succs[label]
            if child < len(succs):
                stack[-1] = (label, child + 1)
                nxt = succs[child]
                state = color.get(nxt, 0)
                if state == 0:
                    color[nxt] = 1
                    stack.append((nxt, 0))
                elif state == 1:
                    edges.add((label, nxt))
            else:
                color[label] = 2
                stack.pop()
        return edges
