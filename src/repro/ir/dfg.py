"""Per-block data-flow graphs (the structure CASTED's Fig. 2/3 draw).

Nodes are instruction indices within one basic block; edges carry the
dependence kind.  The graph encodes every ordering constraint the VLIW
scheduler and the BUG assignment pass must honour:

* ``DATA`` — true register dependence (carries the register, so the
  scheduler can charge the inter-cluster delay when producer and consumer
  land on different clusters);
* ``ANTI`` / ``OUTPUT`` — register reuse hazards (post-regalloc code reuses
  physical registers heavily);
* ``MEM`` — conservative program order among memory operations and ``OUT``
  (no alias analysis: stores order everything, loads reorder freely between
  stores);
* ``CTRL`` — a check's branch precedes the non-replicated instruction it
  guards, and the block terminator issues only after every other
  instruction has completed (block boundaries are scheduling barriers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ir.basic_block import BasicBlock
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg


class DepKind(enum.Enum):
    DATA = "data"
    ANTI = "anti"
    OUTPUT = "output"
    MEM = "mem"
    CTRL = "ctrl"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DepKind.{self.name}"


@dataclass(frozen=True, slots=True)
class Edge:
    """Dependence edge ``src -> dst`` (instruction indices in the block)."""

    src: int
    dst: int
    kind: DepKind
    reg: Reg | None = None


class DFG:
    """Dependence graph of one basic block."""

    def __init__(self, block: BasicBlock) -> None:
        self.block = block
        n = len(block.instructions)
        self.n = n
        self.edges: list[Edge] = []
        self.succs: list[list[Edge]] = [[] for _ in range(n)]
        self.preds: list[list[Edge]] = [[] for _ in range(n)]
        self._build()

    def _add(self, src: int, dst: int, kind: DepKind, reg: Reg | None = None) -> None:
        if src == dst:
            return
        edge = Edge(src, dst, kind, reg)
        self.edges.append(edge)
        self.succs[src].append(edge)
        self.preds[dst].append(edge)

    def _build(self) -> None:
        insns = self.block.instructions
        last_def: dict[Reg, int] = {}
        readers: dict[Reg, list[int]] = {}
        last_store: int | None = None
        loads_since_store: list[int] = []
        # Spill-frame accesses are disambiguated exactly by slot: the frame is
        # private to the allocator, so they only order against the same slot.
        fp_last_store: dict[int, int] = {}
        fp_loads: dict[int, list[int]] = {}
        pending_checks: list[int] = []  # CHKBRs not yet anchored by an N.R. insn

        for i, insn in enumerate(insns):
            info = insn.info
            # Register dependences.
            for r in insn.reads():
                if r in last_def:
                    self._add(last_def[r], i, DepKind.DATA, r)
                readers.setdefault(r, []).append(i)
            for r in insn.writes():
                for j in readers.get(r, ()):
                    self._add(j, i, DepKind.ANTI, r)
                if r in last_def:
                    self._add(last_def[r], i, DepKind.OUTPUT, r)
                last_def[r] = i
                readers[r] = []
            # Memory / output ordering (OUT is ordered like a store so the
            # output stream keeps program order).
            if insn.opcode is Opcode.LOADFP:
                slot_id = insn.imm
                if slot_id in fp_last_store:
                    self._add(fp_last_store[slot_id], i, DepKind.MEM)
                fp_loads.setdefault(slot_id, []).append(i)
            elif insn.opcode is Opcode.STOREFP:
                slot_id = insn.imm
                if slot_id in fp_last_store:
                    self._add(fp_last_store[slot_id], i, DepKind.MEM)
                for j in fp_loads.get(slot_id, ()):
                    self._add(j, i, DepKind.MEM)
                fp_last_store[slot_id] = i
                fp_loads[slot_id] = []
            elif info.is_load:
                if last_store is not None:
                    self._add(last_store, i, DepKind.MEM)
                loads_since_store.append(i)
            elif info.is_store or info.is_out:
                if last_store is not None:
                    self._add(last_store, i, DepKind.MEM)
                for j in loads_since_store:
                    self._add(j, i, DepKind.MEM)
                last_store = i
                loads_since_store = []
            # A check's branch must resolve before the instruction it guards
            # (the next non-replicated side-effecting instruction) executes.
            if insn.opcode is Opcode.CHKBR:
                pending_checks.append(i)
            elif (
                (info.is_store or info.is_out or info.is_terminator)
                and insn.role is not Role.SPILL
            ):
                for c in pending_checks:
                    self._add(c, i, DepKind.CTRL)
                pending_checks = []

        # Block terminator is a barrier: it issues only after every other
        # instruction in the block has completed.
        if insns and insns[-1].info.is_terminator:
            t = len(insns) - 1
            existing = {e.src for e in self.preds[t]}
            for i in range(t):
                if i not in existing:
                    self._add(i, t, DepKind.CTRL)

    # -- queries ---------------------------------------------------------------
    def roots(self) -> list[int]:
        """Nodes with no predecessors."""
        return [i for i in range(self.n) if not self.preds[i]]

    def topological_order(self) -> list[int]:
        """A topological order (program order is always valid: edges go forward)."""
        return list(range(self.n))

    def is_dag(self) -> bool:
        """All edges must point forward in program order."""
        return all(e.src < e.dst for e in self.edges)

    def heights(self, edge_latency) -> list[int]:
        """Critical-path height of each node under ``edge_latency(edge) -> int``.

        Height(n) = max over successor edges of latency + height(succ); leaf
        height is the node's own latency contribution 0.  Used as the list
        scheduler's priority and as BUG's critical-path ordering.
        """
        h = [0] * self.n
        for i in range(self.n - 1, -1, -1):
            best = 0
            for e in self.succs[i]:
                cand = edge_latency(e) + h[e.dst]
                if cand > best:
                    best = cand
            h[i] = best
        return h
