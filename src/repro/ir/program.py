"""Whole programs: one entry function plus a global data segment.

The front end inlines every call (including "library" calls, whose inlined
instructions are tagged ``from_library`` and stay outside the sphere of
replication), so a linked program is a single function.  Global arrays are
laid out contiguously in a word-addressed memory; word 0 is the null page and
always traps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.ir.function import Function

#: Words per cache "byte-sized" unit: the ISA is word-addressed, the cache
#: geometry in Table I is specified in bytes; one word is 8 bytes.
BYTES_PER_WORD = 8


@dataclass(frozen=True)
class GlobalArray:
    """A statically allocated global array of 64-bit words."""

    name: str
    n_words: int
    init: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.n_words <= 0:
            raise IRError(f"global {self.name!r} must have positive size")
        if len(self.init) > self.n_words:
            raise IRError(f"global {self.name!r} initializer longer than array")


@dataclass(frozen=True)
class MemoryLayout:
    """Word addresses assigned to the data segment.

    ``base_of`` maps global name -> first word address.  ``spill_base`` is
    where the register allocator's spill frame starts; its extent is decided
    per compilation.  ``data_end`` is the first address past the globals.
    """

    base_of: dict[str, int] = field(default_factory=dict)
    data_end: int = 1

    @property
    def spill_base(self) -> int:
        return self.data_end


class Program:
    """A linked program: entry function + data segment.

    The front end inlines every call, so compiled workloads carry exactly one
    function (``main``).  Hand-built or parsed programs may register extra
    functions via :meth:`add_function`; the verifier, the schedule validator
    and the protection linter iterate :meth:`functions` so no function
    bypasses them.  The transformation passes themselves remain
    single-function (they operate on ``main`` only).
    """

    def __init__(self, main: Function, globals_: list[GlobalArray] | None = None) -> None:
        self.main = main
        self.globals: dict[str, GlobalArray] = {}
        self._extra_functions: dict[str, Function] = {}
        for g in globals_ or []:
            self.add_global(g)

    def add_global(self, g: GlobalArray) -> None:
        if g.name in self.globals:
            raise IRError(f"duplicate global {g.name!r}")
        self.globals[g.name] = g

    # -- functions ---------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        """Register a non-entry function (its name must be unique)."""
        if function.name == self.main.name or function.name in self._extra_functions:
            raise IRError(f"duplicate function {function.name!r}")
        self._extra_functions[function.name] = function
        return function

    def functions(self) -> list[Function]:
        """Every function in layout order, the entry function first."""
        return [self.main, *self._extra_functions.values()]

    def function(self, name: str) -> Function:
        if name == self.main.name:
            return self.main
        try:
            return self._extra_functions[name]
        except KeyError:
            raise IRError(f"no function {name!r}") from None

    def clone(self) -> "Program":
        """Deep copy (globals are immutable and shared)."""
        other = Program(self.main.clone(), list(self.globals.values()))
        for fn in self._extra_functions.values():
            other.add_function(fn.clone())
        return other

    def layout(self) -> MemoryLayout:
        """Assign word addresses to globals (word 0 reserved as null)."""
        base_of: dict[str, int] = {}
        addr = 1
        for g in self.globals.values():
            base_of[g.name] = addr
            addr += g.n_words
        return MemoryLayout(base_of=base_of, data_end=addr)

    def initial_memory_words(self) -> dict[int, int]:
        """Initial non-zero memory contents implied by global initializers."""
        layout = self.layout()
        mem: dict[int, int] = {}
        for g in self.globals.values():
            base = layout.base_of[g.name]
            for i, value in enumerate(g.init):
                if value:
                    mem[base + i] = value & ((1 << 64) - 1)
        return mem

    def __str__(self) -> str:
        parts = ["program {"]
        for g in self.globals.values():
            if g.init:
                init = ", ".join(str(v) for v in g.init)
                parts.append(f"  global {g.name}[{g.n_words}] = {{{init}}}")
            else:
                parts.append(f"  global {g.name}[{g.n_words}]")
        for fn in self.functions():
            parts.append(str(fn))
        parts.append("}")
        return "\n".join(parts)

    __repr__ = __str__
