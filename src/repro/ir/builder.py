"""Fluent construction of IR functions.

The builder is used by the minic code generator, by the workloads and by
tests.  Arithmetic helpers accept either a register or a Python int for the
second operand; ints become immediates where the ISA allows it and are
materialized with ``MOVI`` otherwise.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.errors import IRError
from repro.ir.basic_block import DETECT_LABEL, BasicBlock
from repro.ir.function import Function
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.registers import Reg


class IRBuilder:
    """Builds one :class:`Function` block by block."""

    def __init__(self, name: str = "main") -> None:
        self.function = Function(name)
        self._current: BasicBlock | None = None
        self._in_library = False

    # -- block management ----------------------------------------------------
    def add_block(self, label: str) -> BasicBlock:
        return self.function.add_block(label)

    def at(self, label: str) -> BasicBlock:
        """Move the insertion point to the end of block ``label``."""
        self._current = self.function.block(label)
        return self._current

    def add_and_enter(self, label: str) -> BasicBlock:
        block = self.add_block(label)
        self._current = block
        return block

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise IRError("no insertion point; call at() first")
        return self._current

    @contextlib.contextmanager
    def library(self) -> Iterator[None]:
        """Mark everything emitted inside as binary-only library code."""
        prev = self._in_library
        self._in_library = True
        try:
            yield
        finally:
            self._in_library = prev

    # -- raw emission ---------------------------------------------------------
    def emit(
        self,
        opcode: Opcode,
        dests: tuple[Reg, ...] = (),
        srcs: tuple[Reg, ...] = (),
        imm: int | None = None,
        targets: tuple[str, ...] = (),
        role: Role = Role.ORIG,
        comment: str = "",
    ) -> Instruction:
        insn = Instruction(
            opcode,
            dests=dests,
            srcs=srcs,
            imm=imm,
            targets=targets,
            role=role,
            from_library=self._in_library,
            comment=comment,
        )
        self.current.append(insn)
        return insn

    def _gp_operand(self, value: "Reg | int", allow_imm: bool) -> tuple[Reg | None, int | None]:
        """Return ``(reg, imm)`` for a flexible second operand."""
        if isinstance(value, Reg):
            return value, None
        if allow_imm:
            return None, int(value)
        return self.movi(int(value)), None

    # -- arithmetic helpers -----------------------------------------------------
    def _binop(self, opcode: Opcode, a: Reg, b: "Reg | int") -> Reg:
        reg, imm = self._gp_operand(b, OP_INFO[opcode].allow_imm)
        dest = self.function.new_gp()
        srcs = (a,) if reg is None else (a, reg)
        self.emit(opcode, (dest,), srcs, imm=imm)
        return dest

    def add(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.ADD, a, b)

    def sub(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.SUB, a, b)

    def mul(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.MUL, a, b)

    def div(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.DIV, a, b)

    def rem(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.REM, a, b)

    def and_(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.AND, a, b)

    def or_(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.OR, a, b)

    def xor(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.XOR, a, b)

    def shl(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.SHL, a, b)

    def shrl(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.SHRL, a, b)

    def shra(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.SHRA, a, b)

    def min_(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.MIN, a, b)

    def max_(self, a: Reg, b: "Reg | int") -> Reg:
        return self._binop(Opcode.MAX, a, b)

    def neg(self, a: Reg) -> Reg:
        dest = self.function.new_gp()
        self.emit(Opcode.NEG, (dest,), (a,))
        return dest

    def abs_(self, a: Reg) -> Reg:
        dest = self.function.new_gp()
        self.emit(Opcode.ABS, (dest,), (a,))
        return dest

    def not_(self, a: Reg) -> Reg:
        dest = self.function.new_gp()
        self.emit(Opcode.NOT, (dest,), (a,))
        return dest

    def mov(self, a: Reg) -> Reg:
        dest = self.function.new_gp()
        self.emit(Opcode.MOV, (dest,), (a,))
        return dest

    def mov_to(self, dest: Reg, a: Reg) -> Instruction:
        """Move into an existing register (needed for loop variables)."""
        op = Opcode.MOV if dest.is_gp else Opcode.PMOV
        return self.emit(op, (dest,), (a,))

    def movi(self, value: int) -> Reg:
        dest = self.function.new_gp()
        self.emit(Opcode.MOVI, (dest,), imm=int(value))
        return dest

    def movi_to(self, dest: Reg, value: int) -> Instruction:
        return self.emit(Opcode.MOVI, (dest,), imm=int(value))

    def select(self, pred: Reg, a: Reg, b: Reg) -> Reg:
        dest = self.function.new_gp()
        self.emit(Opcode.SELECT, (dest,), (pred, a, b))
        return dest

    # -- compares -------------------------------------------------------------
    def _cmp(self, opcode: Opcode, a: Reg, b: "Reg | int") -> Reg:
        reg, imm = self._gp_operand(b, True)
        dest = self.function.new_pr()
        srcs = (a,) if reg is None else (a, reg)
        self.emit(opcode, (dest,), srcs, imm=imm)
        return dest

    def cmpeq(self, a: Reg, b: "Reg | int") -> Reg:
        return self._cmp(Opcode.CMPEQ, a, b)

    def cmpne(self, a: Reg, b: "Reg | int") -> Reg:
        return self._cmp(Opcode.CMPNE, a, b)

    def cmplt(self, a: Reg, b: "Reg | int") -> Reg:
        return self._cmp(Opcode.CMPLT, a, b)

    def cmple(self, a: Reg, b: "Reg | int") -> Reg:
        return self._cmp(Opcode.CMPLE, a, b)

    def cmpgt(self, a: Reg, b: "Reg | int") -> Reg:
        return self._cmp(Opcode.CMPGT, a, b)

    def cmpge(self, a: Reg, b: "Reg | int") -> Reg:
        return self._cmp(Opcode.CMPGE, a, b)

    # -- memory ----------------------------------------------------------------
    def load(self, addr: Reg, offset: int = 0) -> Reg:
        dest = self.function.new_gp()
        self.emit(Opcode.LOAD, (dest,), (addr,), imm=offset)
        return dest

    def store(self, addr: Reg, value: Reg, offset: int = 0) -> Instruction:
        return self.emit(Opcode.STORE, (), (addr, value), imm=offset)

    def out(self, value: Reg) -> Instruction:
        return self.emit(Opcode.OUT, (), (value,))

    # -- control flow -------------------------------------------------------------
    def jmp(self, target: str) -> Instruction:
        return self.emit(Opcode.JMP, targets=(target,))

    def brt(self, pred: Reg, taken: str, fallthrough: str) -> Instruction:
        return self.emit(Opcode.BRT, srcs=(pred,), targets=(taken, fallthrough))

    def brf(self, pred: Reg, taken: str, fallthrough: str) -> Instruction:
        return self.emit(Opcode.BRF, srcs=(pred,), targets=(taken, fallthrough))

    def halt(self, exit_code: int = 0) -> Instruction:
        return self.emit(Opcode.HALT, imm=int(exit_code))

    def chkbr(self, pred: Reg) -> Instruction:
        return self.emit(
            Opcode.CHKBR, srcs=(pred,), targets=(DETECT_LABEL,), role=Role.CHECK
        )
