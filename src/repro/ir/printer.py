"""Textual IR emission (inverse of :mod:`repro.ir.parser`).

Format example::

    program {
      global buf[256]
      global tab[3] = { 1, 2, 3 }
      func main {
        entry:
          movi vr0, #5
          add vr1, vr0, vr0 !dup !cl1
          brt vp0, @loop, @exit
      }
    }

Tags after ``!`` carry role/library/cluster metadata so a parse/print cycle
is lossless for everything the pipeline cares about.
"""

from __future__ import annotations

import re

from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role


def format_instruction(insn: Instruction) -> str:
    ops: list[str] = [str(d) for d in insn.dests]
    ops += [str(s) for s in insn.srcs]
    if insn.imm is not None:
        ops.append(f"#{insn.imm}")
    ops += [f"@{t}" for t in insn.targets]
    text = insn.info.mnemonic
    if ops:
        text += " " + ", ".join(ops)
    tags: list[str] = []
    if insn.role is not Role.ORIG:
        tags.append(insn.role.value)
    if insn.from_library:
        tags.append("lib")
    if insn.cluster is not None:
        tags.append(f"cl{insn.cluster}")
    if insn.dup_of is not None:
        tags.append(f"of{insn.dup_of}")
    for tag in tags:
        text += f" !{tag}"
    return text


def print_function(function: Function, indent: str = "  ") -> str:
    lines = [f"func {function.name} {{"]
    for block in function.blocks():
        lines.append(f"{indent}{block.label}:")
        for insn in block:
            lines.append(f"{indent}{indent}{format_instruction(insn)}")
    lines.append("}")
    return "\n".join(lines)


def print_program(program: Program) -> str:
    lines = ["program {"]
    for g in program.globals.values():
        if g.init:
            init = ", ".join(str(v) for v in g.init)
            lines.append(f"  global {g.name}[{g.n_words}] = {{ {init} }}")
        else:
            lines.append(f"  global {g.name}[{g.n_words}]")
    for fn in program.functions():
        body = print_function(fn)
        lines += ["  " + line for line in body.splitlines()]
    lines.append("}")
    return "\n".join(lines)


#: ``!of<uid>`` tags print process-global instruction uids, which differ
#: between otherwise-identical compiles of the same source.  ``dup_of`` is
#: compiler-pass metadata the simulator and injector never read, so a
#: first-appearance renumbering keeps canonical text content-exact while
#: letting repeated compiles of the same program share one identity.
_DUP_OF_TAG = re.compile(r"!of(\d+)")


def canonical_program_text(program: Program) -> str:
    """Printed program text with ``!of<uid>`` tags renumbered canonically.

    The content-addressed identity everything that caches per-program state
    hashes: the evaluator's golden-injector cache and the worker pool's
    worker-resident cache both key off a digest of this text, so two
    compiles of the same source land on the same cache entry even though
    their raw instruction uids differ.
    """
    ids: dict[str, str] = {}
    return _DUP_OF_TAG.sub(
        lambda m: "!of" + ids.setdefault(m.group(1), str(len(ids))),
        print_program(program),
    )
