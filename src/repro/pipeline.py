"""End-to-end compilation: source IR -> scheduled, allocated machine code.

Mirrors the paper's Fig. 5 pipeline position: ``-O1`` style optimizations
run first, then the CASTED passes (error detection + cluster assignment)
just before instruction scheduling.  The late CSE/DCE that GCC would run
after scheduling are *not* re-run post-ED (paper §IV-A) — except in the
dedicated coverage ablation.

``compile_program`` never mutates its input (it clones first), so one
workload can be compiled under every scheme/machine combination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PassError
from repro.ir.program import Program
from repro.machine.config import MachineConfig
from repro.passes.base import FunctionPass, PassContext
from repro.passes.pass_manager import PassManager
from repro.passes.constfold import ConstFoldPass
from repro.passes.copyprop import CopyPropPass
from repro.passes.cse import LocalCSEPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.licm import LoopInvariantCodeMotion
from repro.passes.simplify_cfg import SimplifyCFGPass
from repro.passes.error_detection import ErrorDetectionInfo, ErrorDetectionPass
from repro.passes.regalloc import LinearScanAllocator, RegAllocResult
from repro.passes.scheduler import ListScheduler, ScheduleResult
from repro.schemes import SchemeInfo, get_scheme_info


class Scheme(enum.Enum):
    """The four code-generation policies the paper evaluates.

    The enum is the typed handle; the per-scheme *facts* (replication,
    check placement, cluster policy, assignment pass) live in the
    :mod:`repro.schemes` registry and are reached through :attr:`info`.
    """

    NOED = "noed"  # no error detection, single cluster
    SCED = "sced"  # error detection, everything on one cluster
    DCED = "dced"  # error detection, fixed original/checker split
    CASTED = "casted"  # error detection, adaptive BUG placement

    @property
    def info(self) -> SchemeInfo:
        """This scheme's :class:`repro.schemes.SchemeInfo` record."""
        return get_scheme_info(self.value)

    @property
    def protected(self) -> bool:
        return self.info.replicates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scheme.{self.name}"


@dataclass
class CompileStats:
    """Static metrics of one compilation."""

    scheme: Scheme
    n_instructions: int
    n_by_role: dict[str, int]
    code_growth: float  # vs. the instruction count right before ED
    frame_words: int
    n_spilled: int
    static_cycles: int
    per_cluster_instructions: dict[int, int] = field(default_factory=dict)


@dataclass
class CompiledProgram:
    """Everything the simulator needs to run one compiled workload."""

    program: Program  # post-regalloc, cluster-assigned IR
    schedules: ScheduleResult
    machine: MachineConfig
    scheme: Scheme
    frame_words: int
    stats: CompileStats
    ed_info: ErrorDetectionInfo | None = None
    pass_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Clone of the IR after cluster assignment but before register
    #: allocation — the representation the protection linter analyses
    #: (shadow registers still distinct virtuals, clusters already
    #: assigned).  Only captured when ``compile_program(...,
    #: capture_pre_regalloc=True)``; ``None`` otherwise.
    pre_regalloc: Program | None = None

    @property
    def mem_words(self) -> int:
        """Words of memory the program needs (data + spill frame + pad)."""
        return self.program.layout().data_end + self.frame_words + 8


def collect_block_profile(program: Program, max_steps: int = 50_000_000) -> dict[str, int]:
    """Block execution counts from one run of the unmodified program.

    Feed the result to :func:`compile_program` as ``block_profile`` for
    profile-guided CASTED placement (block labels survive every pass, so a
    front-end-IR profile applies to the transformed code).
    """
    from collections import Counter

    from repro.ir.interp import Interpreter

    result = Interpreter(program, max_steps=max_steps).run(record_trace=True)
    return dict(Counter(result.block_trace))


def _assignment_pass(
    scheme: Scheme,
    casted_candidates: tuple[str, ...] | None,
    casted_safety_net: bool,
    block_profile: dict[str, int] | None,
) -> FunctionPass:
    factory = scheme.info.make_assignment
    if factory is None:  # pragma: no cover - every registered scheme has one
        raise PassError(f"scheme {scheme} has no assignment pass")
    return factory(
        casted_candidates=casted_candidates,
        casted_safety_net=casted_safety_net,
        block_profile=block_profile,
    )


def compile_program(
    source: Program,
    scheme: Scheme,
    machine: MachineConfig,
    optimize: bool = True,
    verify: bool = True,
    unsafe_post_ed_cse: bool = False,
    casted_candidates: tuple[str, ...] | None = None,
    casted_safety_net: bool = True,
    regalloc_reuse: str = "fifo",
    block_profile: dict[str, int] | None = None,
    check_policy=None,
    protect_slice_depth: int | None = None,
    if_convert: bool = False,
    capture_pre_regalloc: bool = False,
) -> CompiledProgram:
    """Compile ``source`` under ``scheme`` for ``machine``.

    Defaults reproduce the paper's pipeline exactly; the keyword knobs
    drive the ablation/extension benchmarks:

    * ``unsafe_post_ed_cse`` — re-enable replica-merging CSE *after* error
      detection, the thing the paper explicitly disables (§IV-A);
    * ``casted_candidates`` / ``casted_safety_net`` — restrict CASTED's
      adaptive placement portfolio (e.g. ``("bug",)`` for pure greedy);
    * ``regalloc_reuse`` — ``"fifo"`` (round-robin, default) or ``"lifo"``
      free-register reuse;
    * ``block_profile`` — measured block counts from
      :func:`collect_block_profile` for profile-guided CASTED weighting;
    * ``check_policy`` — a :class:`repro.passes.checks.CheckPolicy`
      narrowing which non-replicated classes get operand checks;
    * ``protect_slice_depth`` — Shoestring-style partial redundancy:
      replicate only the backward slice of checked operands to depth k;
    * ``if_convert`` — predicate small branch diamonds before protection;
    * ``capture_pre_regalloc`` — keep a clone of the post-assignment,
      pre-regalloc IR on the result (``CompiledProgram.pre_regalloc``) for
      the protection linter (:mod:`repro.analysis.lint`).
    """
    if machine.n_clusters < scheme.info.min_clusters:
        raise PassError(
            f"{scheme} needs at least {scheme.info.min_clusters} clusters"
        )

    program = source.clone()
    ctx = PassContext(machine=machine)

    passes: list[FunctionPass] = []
    if optimize:
        passes += [
            ConstFoldPass(),
            CopyPropPass(),
            LocalCSEPass(),
            LoopInvariantCodeMotion(),
        ]
        if if_convert:
            # Off by default: predication changes the workloads' branch/check
            # character, which the paper's analysis depends on; the ablation
            # benchmark measures its effect explicitly.
            from repro.passes.ifconvert import IfConversionPass

            passes.append(IfConversionPass())
        passes += [
            SimplifyCFGPass(),
            LocalCSEPass(),
            DeadCodeEliminationPass(),
        ]
    n_before_ed_marker = _CountMarker("pre-ed-count")
    passes.append(n_before_ed_marker)
    if scheme.protected:
        from repro.passes.checks import FULL_POLICY

        passes.append(
            ErrorDetectionPass(
                check_policy=check_policy or FULL_POLICY,
                protect_slice_depth=protect_slice_depth,
            )
        )
        if unsafe_post_ed_cse:
            # What a global late CSE would do if not disabled (§IV-A): merge
            # the replicas into copies of their originals, propagate the
            # copies into the checks (which then compare a register against
            # itself), and sweep the leftovers.
            from repro.passes.unsafe_opt import GlobalReplicaMergePass

            passes.append(GlobalReplicaMergePass())
            passes.append(LocalCSEPass(touch_redundant=True))
            passes.append(CopyPropPass(touch_all=True))
            passes.append(DeadCodeEliminationPass())
    passes.append(
        _assignment_pass(scheme, casted_candidates, casted_safety_net, block_profile)
    )
    if capture_pre_regalloc:
        passes.append(_SnapshotPass("pre-regalloc"))
    passes.append(LinearScanAllocator(reuse_policy=regalloc_reuse))
    passes.append(ListScheduler())

    PassManager(passes, verify=verify).run(program, ctx)

    schedules: ScheduleResult = ctx.artifacts["schedule"]
    regalloc: RegAllocResult = ctx.artifacts["regalloc"]
    ed_info: ErrorDetectionInfo | None = ctx.artifacts.get("error_detection")

    n_by_role: dict[str, int] = {}
    per_cluster: dict[int, int] = {}
    total = 0
    for _, _, insn in program.main.all_instructions():
        total += 1
        n_by_role[insn.role.value] = n_by_role.get(insn.role.value, 0) + 1
        per_cluster[insn.cluster] = per_cluster.get(insn.cluster, 0) + 1

    n_pre_ed = ctx.stats["pre-ed-count"]["instructions"]
    stats = CompileStats(
        scheme=scheme,
        n_instructions=total,
        n_by_role=n_by_role,
        code_growth=total / n_pre_ed if n_pre_ed else 1.0,
        frame_words=regalloc.frame_words,
        n_spilled=regalloc.n_spilled,
        static_cycles=schedules.total_cycles_static(),
        per_cluster_instructions=per_cluster,
    )
    return CompiledProgram(
        program=program,
        schedules=schedules,
        machine=machine,
        scheme=scheme,
        frame_words=regalloc.frame_words,
        stats=stats,
        ed_info=ed_info,
        pass_stats=ctx.stats,
        pre_regalloc=ctx.artifacts.get("snapshot:pre-regalloc"),
    )


class _CountMarker(FunctionPass):
    """Records the instruction count at its pipeline position."""

    def __init__(self, name: str) -> None:
        self.name = name

    def run(self, program: Program, ctx: PassContext) -> bool:
        ctx.record(self.name, instructions=program.main.instruction_count())
        return False


class _SnapshotPass(FunctionPass):
    """Stores a clone of the IR at its pipeline position in the artifacts.

    Cloning remaps instruction uids, but ``dup_of`` links are remapped with
    them (:meth:`Function.clone`), so the snapshot is self-consistent for
    the linter's structural queries.
    """

    def __init__(self, tag: str) -> None:
        self.name = f"snapshot-{tag}"
        self.tag = tag

    def run(self, program: Program, ctx: PassContext) -> bool:
        ctx.artifacts[f"snapshot:{self.tag}"] = program.clone()
        return False
