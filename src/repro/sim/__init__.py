"""Cycle-level simulation of the clustered VLIW target."""

from repro.sim.cache import CacheHierarchy, CacheStats
from repro.sim.executor import SimResult, VLIWExecutor

__all__ = ["CacheHierarchy", "CacheStats", "VLIWExecutor", "SimResult"]
