"""Compiled execution backend: superblock fusion via Python codegen.

The reference interpreter pre-compiles every instruction into a closure and
dispatches them one call at a time.  That dispatch — one CPython frame per
dynamic instruction — is the dominant cost of a Monte-Carlo fault campaign.
This module removes it: each basic block is *fused* into a single generated
Python function ("superblock") in which

* every operand is resolved to a flat register-file index baked into the
  source as a literal (``R[7]``),
* every immediate, memory bound and latency constant is folded in, and
* opcode dispatch disappears entirely — the block body is straight-line
  Python the bytecode compiler optimizes as a unit.

Two fusion flavours exist:

:func:`fuse_functional_blocks`
    Functional semantics only, for the reference interpreter's fault-free
    fast path.  The fused callable returns the interpreter's jump protocol:
    a target label, the ``("halt", code)`` tuple, the detect sentinel, or
    ``None`` (fell through — an IR bug).  Faulted block visits still run on
    the per-instruction closures, so fault application is byte-identical to
    the interpreted backend.

:func:`fuse_timed_blocks`
    Cycle-level semantics for :class:`~repro.sim.executor.VLIWExecutor`:
    cache accounting (with the same-cycle miss-overlap model), memory-stall
    attribution and partial-progress bookkeeping for traps are generated
    inline.  The fused callable returns ``(jump, n_executed, stall_delta)``.

Generated code objects are memoized in a process-wide **decode cache**
keyed by the generated source (which embeds every constant, so the key is
exact): two interpreters over the same program — e.g. a campaign's golden
profiler and its shard workers, or repeated ``Evaluator`` points — compile
each distinct block once per process.  Hits/misses are exported as the
``sim.decode_cache.hits`` / ``sim.decode_cache.misses`` counters.

Every fusion is semantics-preserving by construction and differentially
tested against the interpreted backend (``tests/test_compiled_backend.py``,
plus the fuzz harness in ``tests/test_fuzz_differential.py``).  A block
using an opcode the code generator does not know falls back to the
per-instruction closure loop for that block alone.
"""

from __future__ import annotations

import weakref
from typing import Callable

from repro.errors import MemoryFault
from repro.ir.interp import _DETECT, _div_s, _rem_s, _signed_const
from repro.ir.printer import print_program
from repro.isa.opcodes import LatencyClass, Opcode
from repro.obs import get_telemetry

_MASK = (1 << 64) - 1
_S = 1 << 63
_W = 1 << 64

#: Process-wide decode cache: generated source -> compiled code object.
_CODE_CACHE: dict[str, object] = {}


def decode_cache_size() -> int:
    """Number of distinct fused blocks compiled in this process."""
    return len(_CODE_CACHE)


def _compile_factory(source: str) -> Callable:
    """Compile ``source`` (decode-cached) and return its ``_factory``."""
    tel = get_telemetry()
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, "<repro.sim.compiled>", "exec")
        _CODE_CACHE[source] = code
        tel.count("sim.decode_cache.misses")
    else:
        tel.count("sim.decode_cache.hits")
    ns: dict = {}
    exec(code, ns)  # noqa: S102 - source is generated from trusted IR
    return ns["_factory"]


class UnsupportedOpcode(Exception):
    """Raised internally when a block cannot be fused."""


# -- shared ALU / move / output emission --------------------------------------

_RAW_RR = {
    Opcode.ADD: "(R[{a}] + R[{b}]) & {m}",
    Opcode.SUB: "(R[{a}] - R[{b}]) & {m}",
    Opcode.MUL: "(R[{a}] * R[{b}]) & {m}",
    Opcode.AND: "R[{a}] & R[{b}]",
    Opcode.OR: "R[{a}] | R[{b}]",
    Opcode.XOR: "R[{a}] ^ R[{b}]",
    Opcode.SHL: "(R[{a}] << (R[{b}] & 63)) & {m}",
    Opcode.SHRL: "R[{a}] >> (R[{b}] & 63)",
}

_RAW_RI = {
    Opcode.ADD: "(R[{a}] + {k}) & {m}",
    Opcode.SUB: "(R[{a}] - {k}) & {m}",
    Opcode.MUL: "(R[{a}] * {k}) & {m}",
    Opcode.AND: "R[{a}] & {k}",
    Opcode.OR: "R[{a}] | {k}",
    Opcode.XOR: "R[{a}] ^ {k}",
    Opcode.SHL: "(R[{a}] << ({k} & 63)) & {m}",
    Opcode.SHRL: "R[{a}] >> ({k} & 63)",
}

#: Signed two-input ops, written over already sign-decoded operands.  The
#: second operand is either the local ``y`` or a signed immediate literal.
_SIGNED = {
    Opcode.DIV: "div({x}, {y})",
    Opcode.REM: "rem({x}, {y})",
    Opcode.SHRA: "({x} >> ({y} & 63)) & {m}",
    Opcode.MIN: "min({x}, {y}) & {m}",
    Opcode.MAX: "max({x}, {y}) & {m}",
    Opcode.CMPEQ: "1 if {x} == {y} else 0",
    Opcode.CMPNE: "1 if {x} != {y} else 0",
    Opcode.CMPLT: "1 if {x} < {y} else 0",
    Opcode.CMPLE: "1 if {x} <= {y} else 0",
    Opcode.CMPGT: "1 if {x} > {y} else 0",
    Opcode.CMPGE: "1 if {x} >= {y} else 0",
}

_UNARY = {
    Opcode.NEG: "(-x) & {m}",
    Opcode.ABS: "abs(x) & {m}",
    Opcode.NOT: "(~x) & {m}",
}

_SIGNED_OPS = frozenset(_SIGNED)
_RAW_OPS = frozenset(_RAW_RR)


def _alu_lines(insn, slot_of) -> list[str] | None:
    """Statements for a non-memory, non-control instruction.

    Returns ``None`` for opcodes this helper does not cover (memory and
    control flow, which the two emitters handle themselves).  Raises
    :class:`UnsupportedOpcode` for an opcode nobody can fuse.
    """
    op = insn.opcode
    if op is Opcode.NOP:
        return []
    srcs = [slot_of[r] for r in insn.srcs]
    d = slot_of[insn.dests[0]] if insn.dests else -1
    imm = insn.imm

    if op is Opcode.MOVI:
        return [f"R[{d}] = {imm & _MASK}"]
    if op is Opcode.MOV or op is Opcode.PMOV:
        return [f"R[{d}] = R[{srcs[0]}]"]
    if op in _RAW_OPS:
        if imm is not None:
            tmpl = _RAW_RI[op]
            return [f"R[{d}] = " + tmpl.format(a=srcs[0], k=imm & _MASK, m=_MASK)]
        tmpl = _RAW_RR[op]
        return [f"R[{d}] = " + tmpl.format(a=srcs[0], b=srcs[1], m=_MASK)]
    if op in _SIGNED_OPS:
        lines = [f"x = R[{srcs[0]}]", f"if x & {_S}: x -= {_W}"]
        if imm is not None:
            y = repr(_signed_const(imm))
        else:
            y = "y"
            lines += [f"y = R[{srcs[1]}]", f"if y & {_S}: y -= {_W}"]
        if op is Opcode.DIV or op is Opcode.REM:
            # Inline truncated division instead of calling the interp
            # helper: `x % y` is floored, so nudge the remainder toward
            # zero when the signs differ.  The zero check delegates to the
            # helper purely to raise the identical ArithmeticTrap.
            name = "div" if op is Opcode.DIV else "rem"
            if imm is not None:
                if _signed_const(imm) == 0:
                    return lines + [f"{name}(0, 0)"]
                if _signed_const(imm) > 0:
                    adjust = f"if r and x < 0: r -= {y}"
                else:
                    adjust = f"if r and x >= 0: r -= {y}"
            else:
                lines.append(f"if y == 0: {name}(0, 0)")
                adjust = f"if r and (x < 0) != ({y} < 0): r -= {y}"
            lines += [f"r = x % {y}", adjust]
            if op is Opcode.REM:
                lines.append(f"R[{d}] = r & {_MASK}")
            else:
                lines.append(f"R[{d}] = ((x - r) // {y}) & {_MASK}")
            return lines
        lines.append(f"R[{d}] = " + _SIGNED[op].format(x="x", y=y, m=_MASK))
        return lines
    if op in _UNARY:
        return [
            f"x = R[{srcs[0]}]",
            f"if x & {_S}: x -= {_W}",
            f"R[{d}] = " + _UNARY[op].format(m=_MASK),
        ]
    if op is Opcode.SELECT:
        p, a, b = srcs
        return [f"R[{d}] = R[{a}] if R[{p}] else R[{b}]"]
    if op is Opcode.PNE:
        return [f"R[{d}] = 1 if R[{srcs[0]}] != R[{srcs[1]}] else 0"]
    if op is Opcode.OUT:
        return [f"O.append(R[{srcs[0]}])"]
    if op in (
        Opcode.LOAD, Opcode.STORE, Opcode.LOADFP, Opcode.STOREFP,
        Opcode.JMP, Opcode.BRT, Opcode.BRF, Opcode.HALT, Opcode.CHKBR,
    ):
        return None
    raise UnsupportedOpcode(str(op))


# -- functional fusion (reference interpreter fast path) ----------------------


def _functional_body(block, slot_of, frame_base: int, mem_words: int) -> list[str]:
    lines: list[str] = []
    for insn in block.instructions:
        alu = _alu_lines(insn, slot_of)
        if alu is not None:
            lines += alu
            continue
        op = insn.opcode
        srcs = [slot_of[r] for r in insn.srcs]
        imm = insn.imm
        if op is Opcode.LOAD:
            d = slot_of[insn.dests[0]]
            lines += [
                f"t = (R[{srcs[0]}] + ({imm})) & {_MASK}",
                f"if t < 1 or t >= {mem_words}:",
                "    raise MF('load from invalid address %d' % t)",
                f"R[{d}] = M[t]",
            ]
        elif op is Opcode.STORE:
            lines += [
                f"t = (R[{srcs[0]}] + ({imm})) & {_MASK}",
                f"if t < 1 or t >= {mem_words}:",
                "    raise MF('store to invalid address %d' % t)",
                f"M[t] = R[{srcs[1]}]",
            ]
        elif op is Opcode.LOADFP:
            d = slot_of[insn.dests[0]]
            lines.append(f"R[{d}] = M[{frame_base + imm}]")
        elif op is Opcode.STOREFP:
            lines.append(f"M[{frame_base + imm}] = R[{srcs[0]}]")
        elif op is Opcode.CHKBR:
            lines += [f"if R[{srcs[0]}]:", "    return D"]
        elif op is Opcode.JMP:
            lines.append(f"return {insn.targets[0]!r}")
        elif op is Opcode.BRT:
            taken, fall = insn.targets
            lines.append(f"return {taken!r} if R[{srcs[0]}] else {fall!r}")
        elif op is Opcode.BRF:
            taken, fall = insn.targets
            lines.append(f"return {fall!r} if R[{srcs[0]}] else {taken!r}")
        elif op is Opcode.HALT:
            lines.append(f"return ('halt', {imm!r})")
        else:  # pragma: no cover - _alu_lines already rejects these
            raise UnsupportedOpcode(str(op))
    return lines


def _loop_fallback(fns) -> Callable[[], object]:
    """Per-instruction closure loop, for blocks that cannot be fused."""

    def run() -> object:
        for fn in fns:
            res = fn()
            if res is not None:
                return res
        return None

    return run


#: Per-program memo of generated functional-fusion sources, keyed weakly by
#: the Program object with a (printed IR text, frame_base, mem_words)
#: subkey.  Programs are mutable — transform passes rewrite ``main`` in
#: place — so object identity alone cannot key generated code; the printed
#: text is an exact content fingerprint (it embeds every opcode, operand,
#: label and duplicate tag the generator reads), and the geometry pair
#: covers the only interpreter state the source embeds besides the program
#: (register slots derive deterministically from the program).  A ``None``
#: source marks a block that cannot be fused (closure fallback).  Saves the
#: per-block source *generation* walk when several interpreters share one
#: Program — e.g. a pool worker's profile-path injector, or a bench harness
#: building interp/compiled/batched injectors over one compile.  The code
#: objects themselves are still deduplicated by the source-keyed decode
#: cache above.
_FUSE_SOURCE_CACHE: "weakref.WeakKeyDictionary[object, dict]" = (
    weakref.WeakKeyDictionary()
)


def _functional_sources(interp) -> dict[str, str | None]:
    """Generated (or memoized) per-block sources for ``interp``'s program."""
    tel = get_telemetry()
    per_program = _FUSE_SOURCE_CACHE.setdefault(interp.program, {})
    geometry = (
        print_program(interp.program), interp.frame_base, interp.mem_words
    )
    sources = per_program.get(geometry)
    if sources is not None:
        tel.count("sim.fuse_cache.hits")
        return sources
    tel.count("sim.fuse_cache.misses")
    sources = {}
    slot_of = interp._slot_of
    for block in interp.program.main.blocks():
        try:
            body = _functional_body(
                block, slot_of, interp.frame_base, interp.mem_words
            )
        except UnsupportedOpcode:
            sources[block.label] = None
            continue
        if not body:
            body = ["return None"]
        source = "def _factory(R, M, O, D, div, rem, MF):\n    def _block():\n"
        source += "".join(f"        {line}\n" for line in body)
        source += "        return None\n    return _block\n"
        sources[block.label] = source
    per_program[geometry] = sources
    return sources


def fuse_functional_blocks(interp) -> dict[str, Callable[[], object]]:
    """Fuse every block of ``interp`` for its fault-free fast path.

    The returned callables close over the interpreter's live register /
    memory / output arrays, so they observe ``reset_state`` and snapshot
    restores for free.  Source generation is memoized per (program,
    geometry) — ``sim.fuse_cache.{hits,misses}`` — and compiled code
    objects per source (``sim.decode_cache.*``); only the closure binding
    is re-done per interpreter.
    """
    fused: dict[str, Callable[[], object]] = {}
    for label, source in _functional_sources(interp).items():
        if source is None:
            fused[label] = _loop_fallback(interp._blocks[label].fns)
            continue
        factory = _compile_factory(source)
        fused[label] = factory(
            interp._R, interp._M, interp._O, _DETECT, _div_s, _rem_s, MemoryFault
        )
    return fused


# -- golden trace advance (batched fault trials) ------------------------------


class TraceAdvancer:
    """Replay a known fault-free block trace with minimum dispatch.

    The batched trial engine (:mod:`repro.sim.batch`) advances a whole
    group of trials through their shared golden prefix *once*.  Because the
    golden control flow is already known (the profiling run recorded the
    block trace), none of the interpreter run loop's bookkeeping — fault
    scheduling, watchdog accounting, jump decoding — is needed: the prefix
    is a flat list of the pre-fused superblock callables, and advancing is
    one Python-level loop over a slice of it.  On the interp backend the
    per-visit callable is the block's closure loop instead, so the advancer
    works (more slowly) under either backend.

    The callables close over the interpreter's live register/memory/output
    arrays, so the advanced state is byte-identical to running the same
    visits through :meth:`Interpreter.run`.
    """

    __slots__ = ("_fns",)

    def __init__(self, interp, trace: tuple[str, ...]) -> None:
        fused = interp._fused
        if fused is not None:
            per_label = fused
        else:
            per_label = {
                label: _loop_fallback(cb.fns)
                for label, cb in interp._blocks.items()
            }
        self._fns = [per_label[label] for label in trace]

    def advance(self, start_visit: int, stop_visit: int) -> None:
        """Execute golden trace visits ``[start_visit, stop_visit)``."""
        fns = self._fns
        for i in range(start_visit, stop_visit):
            fns[i]()


# -- timed fusion (cycle-level executor) --------------------------------------

#: Opcodes whose generated statements can raise a :class:`SimTrap`; they
#: record their execution-order index in ``P[0]`` first so the executor can
#: attribute partial block progress on an architectural trap.
_TRAPPING = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.DIV, Opcode.REM})


def _stall_lines(addr_expr: str, is_store: bool, cycle: int, lat: int,
                 overlap: bool) -> list[str]:
    """Cache-charge statements for one memory access at schedule ``cycle``."""
    lines = [f"e = CA({addr_expr}, {is_store}) - {lat}"]
    if overlap:
        lines += [
            "if e > 0:",
            f"    if cc != {cycle}:",
            "        s += ce",
            f"        cc = {cycle}",
            "        ce = e",
            "    elif e > ce:",
            "        ce = e",
        ]
    else:
        lines += ["if e > 0:", "    s += e"]
    return lines


def _timed_body(block, order, cycles, slot_of, frame_base: int, mem_words: int,
                lat_load: int, lat_store: int, overlap: bool) -> list[str]:
    lines: list[str] = []
    n = len(order)
    for pos, i in enumerate(order):
        insn = block.instructions[i]
        op = insn.opcode
        if op in _TRAPPING:
            # Flushed stalls count even when this instruction traps; the
            # pending same-cycle overlap (ce) is dropped, exactly like the
            # interpreted loop's trap path.
            lines.append(f"P[0] = {pos}; P[1] = s")
        alu = _alu_lines(insn, slot_of)
        if alu is not None:
            lines += alu
            continue
        srcs = [slot_of[r] for r in insn.srcs]
        imm = insn.imm
        c = cycles[i]
        if op is Opcode.LOAD:
            d = slot_of[insn.dests[0]]
            lines += [
                f"t = (R[{srcs[0]}] + ({imm})) & {_MASK}",
                f"if t < 1 or t >= {mem_words}:",
                "    raise MF('load from invalid address %d' % t)",
                *_stall_lines("t", False, c, lat_load, overlap),
                f"R[{d}] = M[t]",
            ]
        elif op is Opcode.STORE:
            lines += [
                f"t = (R[{srcs[0]}] + ({imm})) & {_MASK}",
                f"if t < 1 or t >= {mem_words}:",
                "    raise MF('store to invalid address %d' % t)",
                *_stall_lines("t", True, c, lat_store, overlap),
                f"M[t] = R[{srcs[1]}]",
            ]
        elif op is Opcode.LOADFP:
            d = slot_of[insn.dests[0]]
            addr = frame_base + imm
            lines += [
                *_stall_lines(str(addr), False, c, lat_load, overlap),
                f"R[{d}] = M[{addr}]",
            ]
        elif op is Opcode.STOREFP:
            addr = frame_base + imm
            lines += [
                *_stall_lines(str(addr), True, c, lat_store, overlap),
                f"M[{addr}] = R[{srcs[0]}]",
            ]
        elif op is Opcode.CHKBR:
            lines += [f"if R[{srcs[0]}]:", f"    return (D, {pos + 1}, s + ce)"]
        elif op is Opcode.JMP:
            lines.append(f"return ({insn.targets[0]!r}, {n}, s + ce)")
        elif op is Opcode.BRT:
            taken, fall = insn.targets
            lines.append(
                f"return (({taken!r} if R[{srcs[0]}] else {fall!r}), {n}, s + ce)"
            )
        elif op is Opcode.BRF:
            taken, fall = insn.targets
            lines.append(
                f"return (({fall!r} if R[{srcs[0]}] else {taken!r}), {n}, s + ce)"
            )
        elif op is Opcode.HALT:
            lines.append(f"return (('halt', {imm!r}), {n}, s + ce)")
        else:  # pragma: no cover - _alu_lines already rejects these
            raise UnsupportedOpcode(str(op))
    return lines


def fuse_timed_blocks(executor) -> dict[str, tuple[Callable, int, int]] | None:
    """Fuse every block of a :class:`VLIWExecutor` with inline timing.

    Returns ``{label: (fused_fn, n_instructions, schedule_length)}``, or
    ``None`` when some block cannot be fused (the executor then falls back
    to the interpreted backend).  ``fused_fn() -> (jump, n_executed,
    stall_delta)``; on a :class:`~repro.errors.SimTrap` the number of
    instructions completed before the trapping one is left in
    ``executor._progress[0]`` and the block's flushed stall cycles in
    ``executor._progress[1]``.
    """
    interp = executor._interp
    slot_of = interp._slot_of
    machine = executor.machine
    lat = machine.latencies
    lat_load = lat[LatencyClass.LOAD]
    lat_store = lat[LatencyClass.STORE]
    fused: dict[str, tuple[Callable, int, int]] = {}
    for block in executor.compiled.program.main.blocks():
        sched = executor.compiled.schedules.blocks[block.label]
        order = sorted(
            range(len(block.instructions)),
            key=lambda i: (sched.cycle_of[i], i),
        )
        try:
            body = _timed_body(
                block, order, sched.cycle_of, slot_of,
                interp.frame_base, interp.mem_words,
                lat_load, lat_store, executor.overlap_misses,
            )
        except UnsupportedOpcode:
            return None
        n = len(order)
        if not body:
            body = [f"return (None, {n}, s + ce)"]
        source = "def _factory(R, M, O, D, div, rem, MF, CA, P):\n"
        source += "    def _block():\n        s = 0\n        cc = -1\n        ce = 0\n"
        source += "".join(f"        {line}\n" for line in body)
        source += f"        return (None, {n}, s + ce)\n    return _block\n"
        factory = _compile_factory(source)
        fused[block.label] = (
            factory(
                interp._R, interp._M, interp._O, _DETECT, _div_s, _rem_s,
                MemoryFault, executor.cache.access, executor._progress,
            ),
            n,
            sched.length,
        )
    return fused
