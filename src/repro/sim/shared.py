"""Architectural snapshots in shared memory for pool workers.

A campaign worker needs the golden run's checkpoint snapshots (register
file + data memory + emitted output at ~64 trace boundaries) to fast-forward
trials.  Pickling them into every task would ship megabytes per dispatch;
re-profiling in each worker costs a full golden replay.  Instead the parent
flattens all snapshot words into **one** ``multiprocessing.shared_memory``
block and ships a tiny picklable handle (segment name + per-snapshot
layout).  Workers attach the segment read-only-by-convention, materialize
ordinary :class:`~repro.ir.interp.Snapshot` objects from it once (the
worker-resident cache keeps them), and detach.

Lifetime: the segment belongs to the parent.  A ``weakref.finalize`` tied
to the parent-side handle closes and unlinks it when the owning injector is
garbage collected (or at interpreter exit), so campaigns never leak
``/dev/shm`` segments.  Workers unregister the attachment from their
``resource_tracker`` — otherwise every worker's tracker would try to unlink
the segment at worker exit and spew warnings for the races it loses.
"""

from __future__ import annotations

import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from repro.ir.interp import Snapshot

#: (dyn, label, n_regs, n_mem, n_output) — enough to slice one snapshot
#: back out of the flat word block.
_SnapMeta = tuple[int, str, int, int, int]


class SharedSnapshots:
    """A picklable handle to snapshots stored in one shared-memory block.

    Build with :meth:`export` in the parent; call :meth:`load` in a worker.
    Pickling ships only the segment name and layout metadata (a few hundred
    bytes), never the snapshot words themselves.
    """

    __slots__ = ("_name", "_meta", "_total_words", "_shm", "__weakref__")

    def __init__(
        self, name: str | None, meta: list[_SnapMeta], total_words: int
    ) -> None:
        self._name = name
        self._meta = meta
        self._total_words = total_words
        self._shm: shared_memory.SharedMemory | None = None

    @classmethod
    def export(cls, snapshots: Sequence[Snapshot]) -> "SharedSnapshots":
        """Copy ``snapshots`` into a fresh shared segment (parent side)."""
        meta: list[_SnapMeta] = [
            (s.dyn, s.label, len(s.regs), len(s.mem), len(s.output))
            for s in snapshots
        ]
        total = sum(nr + nm + no for _, _, nr, nm, no in meta)
        if total == 0:
            return cls(None, meta, 0)
        shm = shared_memory.SharedMemory(create=True, size=total * 8)
        words = np.ndarray((total,), dtype=np.uint64, buffer=shm.buf)
        offset = 0
        for snap in snapshots:
            for chunk in (snap.regs, snap.mem, snap.output):
                if chunk:
                    words[offset : offset + len(chunk)] = np.array(
                        chunk, dtype=np.uint64
                    )
                    offset += len(chunk)
        handle = cls(shm.name, meta, total)
        handle._shm = shm
        # The parent owns the segment: close+unlink when the handle (and so
        # the injector that exported it) is collected, or at exit via the
        # finalizer.  ``unlink`` unregisters from the resource tracker, so
        # the create-time registration stays balanced and the tracker never
        # sees the segment as leaked.
        weakref.finalize(handle, _release, shm)
        return handle

    @property
    def nbytes(self) -> int:
        return self._total_words * 8

    def load(self) -> tuple[Snapshot, ...]:
        """Materialize :class:`Snapshot` objects from the segment (worker side)."""
        if not self._meta:
            return ()
        if self._total_words == 0 or self._name is None:
            return tuple(
                Snapshot(dyn, label, (), (), ()) for dyn, label, _, _, _ in self._meta
            )
        # Attach without registering with the resource tracker: only the
        # parent may unlink, and the tracker is *shared* across pool
        # workers (forked fd), so register/unregister pairs from several
        # workers attaching the same segment would race its set-based
        # bookkeeping.  Suppressing registration avoids the whole dance —
        # this process never tracks a segment it does not own.
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        try:
            shm = shared_memory.SharedMemory(name=self._name)
        finally:
            resource_tracker.register = orig_register
        try:
            words = np.ndarray((self._total_words,), dtype=np.uint64, buffer=shm.buf)
            out: list[Snapshot] = []
            offset = 0
            for dyn, label, n_regs, n_mem, n_out in self._meta:
                # ``.tolist()`` yields plain Python ints — the interpreter's
                # register/memory lists are masked Python ints, and numpy
                # scalars would silently change overflow semantics.
                regs = tuple(words[offset : offset + n_regs].tolist())
                offset += n_regs
                mem = tuple(words[offset : offset + n_mem].tolist())
                offset += n_mem
                output = tuple(words[offset : offset + n_out].tolist())
                offset += n_out
                out.append(Snapshot(dyn, label, regs, mem, output))
            return tuple(out)
        finally:
            shm.close()

    def __getstate__(self) -> tuple[str | None, list[_SnapMeta], int]:
        return (self._name, self._meta, self._total_words)

    def __setstate__(
        self, state: tuple[str | None, list[_SnapMeta], int]
    ) -> None:
        self._name, self._meta, self._total_words = state
        self._shm = None


def _release(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    except Exception:  # pragma: no cover - already gone
        pass
