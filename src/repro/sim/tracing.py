"""Issue traces (the SKI-style debugging view).

Replays a compiled program's block-visit sequence against its static
schedules and emits one record per issued instruction with its global issue
cycle in *compute time* — dynamic memory stalls are not folded in (they
stall the whole machine uniformly and are reported in aggregate by
``SimResult.stall_cycles``), so the trace's final cycle equals
``SimResult.cycles - SimResult.stall_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.pipeline import CompiledProgram
from repro.sim.executor import VLIWExecutor


@dataclass(frozen=True)
class IssueRecord:
    """One instruction issue."""

    cycle: int  # global cycle of issue
    cluster: int
    slot: int
    block: str
    text: str  # rendered instruction
    role: str


def issue_trace(
    compiled: CompiledProgram, max_records: int | None = None
) -> Iterator[IssueRecord]:
    """Yield issue records in global time order.

    Runs the program once on the cycle-level executor to obtain the block
    trace and per-visit stall charges, then unrolls the static schedules.
    """
    executor = VLIWExecutor(compiled)
    # Functional pre-run for the visit sequence.
    result = executor.functional_run(record_trace=True)

    emitted = 0
    global_cycle = 0
    for label in result.block_trace:
        block = compiled.program.main.block(label)
        sched = compiled.schedules.blocks[label]
        order = sorted(
            range(len(block.instructions)),
            key=lambda i: (sched.cycle_of[i], sched.slot_of[i], i),
        )
        for i in order:
            insn = block.instructions[i]
            yield IssueRecord(
                cycle=global_cycle + sched.cycle_of[i],
                cluster=insn.cluster if insn.cluster is not None else 0,
                slot=sched.slot_of[i],
                block=label,
                text=str(insn),
                role=insn.role.value,
            )
            emitted += 1
            if max_records is not None and emitted >= max_records:
                return
        global_cycle += sched.length


def render_issue_trace(
    compiled: CompiledProgram, max_records: int = 64
) -> str:
    """Text rendering of the first ``max_records`` issues."""
    lines = [f"{'cycle':>7s}  cl/slot  {'block':16s} instruction"]
    for rec in issue_trace(compiled, max_records=max_records):
        lines.append(
            f"{rec.cycle:7d}  c{rec.cluster}/s{rec.slot}    {rec.block:16s} {rec.text}"
        )
    return "\n".join(lines)
