"""Cycle-level executor for compiled programs.

Runs a :class:`~repro.pipeline.CompiledProgram` on the lockstep clustered
VLIW: instructions execute in (issue-cycle, program-order) order — which is
always dataflow-safe given the scheduler's constraints (within a cycle every
read happens before any same-cycle write can matter, because true deps never
share a cycle) — and timing is

``cycles = sum over block visits of (static schedule length + memory stalls)``

where a memory access slower than its scheduled (L1-hit) latency stalls the
whole lockstep machine, and misses issued in the *same* VLIW cycle overlap
(non-blocking caches, Table I) — that per-bundle overlap is the memory-level
parallelism CASTED exploits by spreading independent memory operations
across clusters (paper §III-D).

The functional side reuses the reference interpreter's compiled closures, so
functional behaviour is identical by construction to the model the fault
campaigns use; a differential test asserts it anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimError, SimTrap
from repro.ir.interp import FaultSpec, Interpreter, RunResult
from repro.ir.program import Program
from repro.isa.opcodes import LatencyClass, Opcode
from repro.machine.config import MachineConfig
from repro.obs import get_telemetry
from repro.pipeline import CompiledProgram
from repro.sim.cache import CacheHierarchy, CacheStats
from repro.ir.interp import ExitKind

_MASK = (1 << 64) - 1

#: Default watchdog: a compiled workload finishing under ``N`` cycles in the
#: fault-free run gets ``_WATCHDOG_FACTOR * N`` cycles before TIMEOUT.
DEFAULT_MAX_CYCLES = 2_000_000_000


@dataclass(frozen=True)
class SimResult:
    """Outcome and timing of one cycle-level run."""

    kind: ExitKind
    exit_code: int | None
    output: tuple[int, ...]
    cycles: int
    dyn_instructions: int
    stall_cycles: int
    block_visits: int
    cache: CacheStats

    @property
    def architectural_state(self) -> tuple:
        return (self.kind, self.exit_code, self.output)


class _BlockCode:
    """Pre-extracted execution order + memory metadata for one block."""

    __slots__ = ("label", "fns", "cycles", "mem_kind", "addr_slot", "addr_off", "length", "n")

    def __init__(self, label: str, length: int) -> None:
        self.label = label
        self.fns: list = []
        self.cycles: list[int] = []
        self.mem_kind: list[int] = []  # 0 none, 1 load, 2 store
        self.addr_slot: list[int] = []  # register slot, or -1 for frame ops
        self.addr_off: list[int] = []
        self.length = length
        self.n = 0


class VLIWExecutor:
    """Execute a compiled program with cycle accounting."""

    def __init__(
        self,
        compiled: CompiledProgram,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        overlap_misses: bool = True,
        backend: str | None = None,
    ) -> None:
        self.compiled = compiled
        self.machine: MachineConfig = compiled.machine
        self.max_cycles = max_cycles
        #: Non-blocking caches (Table I): misses issued in the same VLIW
        #: cycle overlap.  The MLP ablation sets this False to serialize
        #: every miss.
        self.overlap_misses = overlap_misses
        self.cache = CacheHierarchy(self.machine.cache)

        # Reuse the interpreter's closure compiler and state arrays.  The
        # interpreter carries the backend choice too, so functional runs
        # (and the fault campaigns built on them) fuse the same way.
        self._interp = Interpreter(
            compiled.program,
            mem_words=compiled.mem_words,
            frame_words=compiled.frame_words,
            backend=backend,
        )
        self.backend = self._interp.backend
        self._entry = compiled.program.main.entry.label
        self._blocks: dict[str, _BlockCode] = {}
        #: Lazy static (cluster, role) attribution table for telemetry.
        self._issue_table: dict[str, dict[tuple[int, str], int]] | None = None
        self._build(compiled.program)

        lat = self.machine.latencies
        self._sched_lat_load = lat[LatencyClass.LOAD]
        self._sched_lat_store = lat[LatencyClass.STORE]

        #: Partial-progress cells for the fused timed blocks: a trapping
        #: instruction records how many block instructions completed before
        #: it and the stalls flushed so far, so the except-path can
        #: attribute ``dyn`` and ``stall_cycles`` exactly.
        self._progress: list[int] = [0, 0]
        self._fused = None
        if self.backend == "compiled":
            from repro.sim.compiled import fuse_timed_blocks

            self._fused = fuse_timed_blocks(self)
            if self._fused is None:  # unfusable opcode: fall back wholesale
                self.backend = "interp"

    def _build(self, program: Program) -> None:
        slot_of = self._interp._slot_of
        frame_base = self._interp.frame_base
        for block in program.main.blocks():
            sched = self.compiled.schedules.blocks[block.label]
            cb = self._interp._blocks[block.label]
            code = _BlockCode(block.label, sched.length)
            order = sorted(
                range(len(block.instructions)),
                key=lambda i: (sched.cycle_of[i], i),
            )
            for i in order:
                insn = block.instructions[i]
                code.fns.append(cb.fns[i])
                code.cycles.append(sched.cycle_of[i])
                op = insn.opcode
                if op is Opcode.LOAD:
                    code.mem_kind.append(1)
                    code.addr_slot.append(slot_of[insn.srcs[0]])
                    code.addr_off.append(insn.imm)
                elif op is Opcode.STORE:
                    code.mem_kind.append(2)
                    code.addr_slot.append(slot_of[insn.srcs[0]])
                    code.addr_off.append(insn.imm)
                elif op is Opcode.LOADFP:
                    code.mem_kind.append(1)
                    code.addr_slot.append(-1)
                    code.addr_off.append(frame_base + insn.imm)
                elif op is Opcode.STOREFP:
                    code.mem_kind.append(2)
                    code.addr_slot.append(-1)
                    code.addr_off.append(frame_base + insn.imm)
                else:
                    code.mem_kind.append(0)
                    code.addr_slot.append(-1)
                    code.addr_off.append(0)
            code.n = len(code.fns)
            self._blocks[code.label] = code

    # -- execution ------------------------------------------------------------
    def functional_run(
        self,
        record_trace: bool = False,
        faults: tuple[FaultSpec, ...] = (),
        max_steps: int | None = None,
    ) -> RunResult:
        """Functional (untimed) reference run of the compiled program.

        Executes on the embedded reference interpreter — the same closures
        the cycle-accurate :meth:`run` drives — and returns its
        :class:`~repro.ir.interp.RunResult`.  This is the supported way to
        obtain the block-visit trace (``record_trace=True``) that tools like
        :mod:`repro.sim.tracing` replay against the static schedules.
        """
        return self._interp.run(
            faults=faults, max_steps=max_steps, record_trace=record_trace
        )

    def run(self, max_cycles: int | None = None) -> SimResult:
        """One fault-free cycle-accurate run."""
        tel = get_telemetry()
        if not tel.enabled:
            return self._run(max_cycles, None, None)
        visit_counts: dict[str, int] = {}
        block_stalls: dict[str, int] = {}
        with tel.span(
            "sim.run", cat="sim", timer="sim.run.seconds",
            scheme=self.compiled.scheme.value,
            issue_width=self.machine.issue_width,
            delay=self.machine.inter_cluster_delay,
        ) as sp:
            result = self._run(max_cycles, visit_counts, block_stalls)
            sp.set(
                kind=result.kind.value,
                cycles=result.cycles,
                stall_cycles=result.stall_cycles,
                dyn_instructions=result.dyn_instructions,
                block_visits=result.block_visits,
            )
            self._record_run_metrics(tel, result, visit_counts, block_stalls)
        return result

    def _record_run_metrics(
        self,
        tel,
        result: SimResult,
        visit_counts: dict[str, int],
        block_stalls: dict[str, int],
    ) -> None:
        """Aggregate counters derived from one finished run.

        Per-cluster/role issue counts come from the static per-block tables
        times the observed visit counts, so the inner loop never pays for
        attribution.
        """
        tel.count("sim.runs")
        tel.count("sim.cycles", result.cycles)
        tel.count("sim.stall_cycles", result.stall_cycles)
        tel.count("sim.dyn_instructions", result.dyn_instructions)
        tel.count("sim.block_visits", result.block_visits)
        issue_table = self._issue_attribution_table()
        for label, visits in visit_counts.items():
            for (cluster, role), n in issue_table[label].items():
                tel.count(f"sim.issue.c{cluster}.{role}", n * visits)
        for label, stalls in block_stalls.items():
            if stalls:
                tel.count(f"sim.stalls.block.{label}", stalls)
        for name, value in result.cache.metric_items():
            tel.count(name, value)

    def _issue_attribution_table(self) -> dict[str, dict[tuple[int, str], int]]:
        """Static per-block (cluster, role) -> instruction count, cached."""
        table = self._issue_table
        if table is None:
            table = {}
            for block in self.compiled.program.main.blocks():
                counts: dict[tuple[int, str], int] = {}
                for insn in block.instructions:
                    key = (
                        insn.cluster if insn.cluster is not None else 0,
                        insn.role.value,
                    )
                    counts[key] = counts.get(key, 0) + 1
                table[block.label] = counts
            self._issue_table = table
        return table

    def _run(
        self,
        max_cycles: int | None,
        visit_counts: dict[str, int] | None,
        block_stalls: dict[str, int] | None,
    ) -> SimResult:
        if self._fused is not None:
            return self._run_compiled(max_cycles, visit_counts, block_stalls)
        return self._run_interp(max_cycles, visit_counts, block_stalls)

    def _run_compiled(
        self,
        max_cycles: int | None,
        visit_counts: dict[str, int] | None,
        block_stalls: dict[str, int] | None,
    ) -> SimResult:
        """Hot loop over fused superblocks; accounting mirrors
        :meth:`_run_interp` exactly (differentially tested)."""
        interp = self._interp
        interp.reset_state()
        self.cache.reset()
        budget = self.max_cycles if max_cycles is None else max_cycles

        cycles = 0
        stalls = 0
        dyn = 0
        visits = 0
        label = self._entry
        fused = self._fused
        progress = self._progress

        def finish(kind: ExitKind, code_: int | None) -> SimResult:
            return SimResult(
                kind=kind,
                exit_code=code_,
                output=tuple(interp._O),
                cycles=cycles + stalls,
                dyn_instructions=dyn,
                stall_cycles=stalls,
                block_visits=visits,
                cache=self.cache.stats,
            )

        try:
            while True:
                fn, _n, length = fused[label]
                visits += 1
                if visit_counts is not None:
                    visit_counts[label] = visit_counts.get(label, 0) + 1
                cycles += length
                if cycles + stalls > budget:
                    return finish(ExitKind.TIMEOUT, None)
                jump, done, ds = fn()
                dyn += done
                if ds:
                    stalls += ds
                    if block_stalls is not None:
                        block_stalls[label] = block_stalls.get(label, 0) + ds
                if jump is None:
                    raise SimError(f"block {label} fell through")  # pragma: no cover
                if jump == "__detect__":
                    return finish(ExitKind.DETECTED, None)
                if type(jump) is tuple:
                    return finish(ExitKind.OK, jump[1])
                label = jump
        except SimTrap:
            # The trapping instruction left its completed-predecessor count
            # and the block's flushed stalls in the progress cells; the
            # trapping instruction itself does not commit and pending
            # same-cycle overlap is dropped (same as the interpreted loop).
            dyn += progress[0]
            stalls += progress[1]
            return finish(ExitKind.EXCEPTION, None)

    def _run_interp(
        self,
        max_cycles: int | None,
        visit_counts: dict[str, int] | None,
        block_stalls: dict[str, int] | None,
    ) -> SimResult:
        interp = self._interp
        interp.reset_state()
        self.cache.reset()
        R = interp._R
        cache_access = self.cache.access
        budget = self.max_cycles if max_cycles is None else max_cycles
        lat_load = self._sched_lat_load
        lat_store = self._sched_lat_store

        cycles = 0
        stalls = 0
        dyn = 0
        visits = 0
        label = self._entry
        blocks = self._blocks

        def finish(kind: ExitKind, code_: int | None) -> SimResult:
            return SimResult(
                kind=kind,
                exit_code=code_,
                output=tuple(interp._O),
                cycles=cycles + stalls,
                dyn_instructions=dyn,
                stall_cycles=stalls,
                block_visits=visits,
                cache=self.cache.stats,
            )

        stalls_at_entry = 0
        try:
            while True:
                code = blocks[label]
                visits += 1
                if visit_counts is not None:
                    visit_counts[label] = visit_counts.get(label, 0) + 1
                    stalls_at_entry = stalls
                cycles += code.length
                if cycles + stalls > budget:
                    return finish(ExitKind.TIMEOUT, None)
                jump: object = None
                cur_cycle = -1
                cur_extra = 0
                fns = code.fns
                mem_kind = code.mem_kind
                cyc = code.cycles
                addr_slot = code.addr_slot
                addr_off = code.addr_off
                for i in range(code.n):
                    mk = mem_kind[i]
                    if mk:
                        slot = addr_slot[i]
                        if slot >= 0:
                            addr = (R[slot] + addr_off[i]) & _MASK
                        else:
                            addr = addr_off[i]
                        # The closure re-validates the address and traps; we
                        # only charge the cache when the access is legal.
                        if 1 <= addr < interp.mem_words:
                            lat = cache_access(addr, mk == 2)
                            sched = lat_load if mk == 1 else lat_store
                            extra = lat - sched
                            if extra > 0:
                                if not self.overlap_misses:
                                    stalls += extra
                                else:
                                    c = cyc[i]
                                    if c != cur_cycle:
                                        stalls += cur_extra
                                        cur_cycle = c
                                        cur_extra = extra
                                    elif extra > cur_extra:
                                        cur_extra = extra
                    res = fns[i]()
                    dyn += 1
                    if res is not None:
                        jump = res
                        break
                stalls += cur_extra
                if block_stalls is not None and stalls != stalls_at_entry:
                    block_stalls[label] = (
                        block_stalls.get(label, 0) + stalls - stalls_at_entry
                    )
                if jump is None:
                    raise SimError(f"block {label} fell through")  # pragma: no cover
                if jump == "__detect__":
                    return finish(ExitKind.DETECTED, None)
                if type(jump) is tuple:
                    return finish(ExitKind.OK, jump[1])
                label = jump
        except SimTrap as trap:
            _ = trap
            return finish(ExitKind.EXCEPTION, None)
