"""Set-associative write-back cache hierarchy (paper Table I).

Three inclusive-fill levels with LRU replacement plus main memory.  An
access returns its total latency: the latency of the closest level that
hits, or the memory latency on a full miss.  Stores write-allocate and mark
lines dirty; write-back traffic is counted but (as is conventional for
simple timing models) not charged latency — buffers hide it.

The ISA is word-addressed; one word is 8 bytes (``BYTES_PER_WORD``), so the
byte-based Table I geometry is converted on access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import BYTES_PER_WORD
from repro.machine.config import CacheHierarchyConfig, CacheLevelConfig


@dataclass
class CacheStats:
    """Per-level hit/miss counters plus write-back count."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    writebacks: int = 0
    accesses: int = 0

    def hit_rate(self, level: str) -> float:
        h = self.hits.get(level, 0)
        m = self.misses.get(level, 0)
        return h / (h + m) if h + m else 0.0

    def metric_items(self, prefix: str = "sim.cache") -> list[tuple[str, int]]:
        """Flatten the counters under telemetry naming (``sim.cache.L1.hits``)."""
        items: list[tuple[str, int]] = [
            (f"{prefix}.accesses", self.accesses),
            (f"{prefix}.writebacks", self.writebacks),
        ]
        items += [(f"{prefix}.{lv}.hits", n) for lv, n in self.hits.items()]
        items += [(f"{prefix}.{lv}.misses", n) for lv, n in self.misses.items()]
        return items


class _Level:
    __slots__ = ("cfg", "sets", "n_sets", "block_bytes")

    def __init__(self, cfg: CacheLevelConfig) -> None:
        self.cfg = cfg
        self.n_sets = cfg.n_sets
        self.block_bytes = cfg.block_bytes
        # Each set maps tag -> dirty flag; dict preserves insertion order,
        # which we maintain as LRU order (oldest first).
        self.sets: list[dict[int, bool]] = [dict() for _ in range(self.n_sets)]

    def lookup(self, block_addr: int) -> bool:
        """True on hit; refreshes LRU position."""
        set_idx = block_addr % self.n_sets
        tag = block_addr // self.n_sets
        s = self.sets[set_idx]
        if tag in s:
            dirty = s.pop(tag)
            s[tag] = dirty  # move to MRU position
            return True
        return False

    def fill(self, block_addr: int, dirty: bool) -> tuple[bool, int | None]:
        """Insert a line; returns (evicted_dirty, evicted_block_addr)."""
        set_idx = block_addr % self.n_sets
        tag = block_addr // self.n_sets
        s = self.sets[set_idx]
        if tag in s:
            s[tag] = s.pop(tag) or dirty
            return (False, None)
        evicted_dirty = False
        evicted_addr: int | None = None
        if len(s) >= self.cfg.associativity:
            old_tag, old_dirty = next(iter(s.items()))
            del s[old_tag]
            evicted_dirty = old_dirty
            evicted_addr = old_tag * self.n_sets + set_idx
        s[tag] = dirty
        return (evicted_dirty, evicted_addr)

    def set_dirty(self, block_addr: int) -> None:
        set_idx = block_addr % self.n_sets
        tag = block_addr // self.n_sets
        s = self.sets[set_idx]
        if tag in s:
            s[tag] = s.pop(tag)
            s[tag] = True

    def flush(self) -> None:
        for s in self.sets:
            s.clear()


class CacheHierarchy:
    """The full L1/L2/L3 + memory stack."""

    def __init__(self, config: CacheHierarchyConfig) -> None:
        self.config = config
        self.levels = [_Level(cfg) for cfg in config.levels]
        self.stats = CacheStats(
            hits={cfg.name: 0 for cfg in config.levels},
            misses={cfg.name: 0 for cfg in config.levels},
        )

    def reset(self) -> None:
        for level in self.levels:
            level.flush()
        self.stats = CacheStats(
            hits={lv.cfg.name: 0 for lv in self.levels},
            misses={lv.cfg.name: 0 for lv in self.levels},
        )

    def access(self, word_addr: int, is_store: bool) -> int:
        """Access one word; returns total latency in cycles."""
        byte_addr = word_addr * BYTES_PER_WORD
        self.stats.accesses += 1

        hit_idx: int | None = None
        latency = self.config.memory_latency
        for i, level in enumerate(self.levels):
            block_addr = byte_addr // level.block_bytes
            if level.lookup(block_addr):
                self.stats.hits[level.cfg.name] += 1
                hit_idx = i
                latency = level.cfg.latency
                break
            self.stats.misses[level.cfg.name] += 1

        # Fill every level closer than the hit point (or all on full miss).
        fill_until = hit_idx if hit_idx is not None else len(self.levels)
        for i in range(fill_until - 1, -1, -1):
            level = self.levels[i]
            block_addr = byte_addr // level.block_bytes
            evicted_dirty, _ = level.fill(block_addr, dirty=False)
            if evicted_dirty:
                self.stats.writebacks += 1

        if is_store:
            # Write-allocate, write-back: dirty the line in the closest level.
            l1 = self.levels[0]
            l1.set_dirty(byte_addr // l1.block_bytes)
        return latency
