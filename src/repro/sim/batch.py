"""Batched fault-trial execution: one decoded program, N trials per group.

Every trial in a Monte-Carlo campaign shares the golden control flow until
its first injected fault diverges — the same amortize-the-redundancy
structure MEEK exploits for cheap parallel error detection and RepTFD
exploits by replaying against a single reference trace.  The scalar path
already leans on it once (each trial resumes from the nearest golden
snapshot); this module leans on it *per group*:

1. **Group planning** (:func:`plan_groups`): a shard's trials are bucketed
   by the nearest golden snapshot at or before their earliest fault, then
   sorted by fault position inside each bucket.
2. **Shared prefix advance**: each group restores its snapshot *once* and
   a :class:`~repro.sim.compiled.TraceAdvancer` pushes the architectural
   state forward along the recorded golden block trace — a single
   Python-level dispatch per block visit serves every trial in the group,
   instead of each trial re-executing the prefix privately.
3. **Divergence peel-off**: at the block boundary where a trial's first
   fault lands, its state is forked (trials whose faults share a block
   share the fork) and the trial peels off to the existing scalar
   :meth:`~repro.ir.interp.Interpreter.run` path, which applies faults
   byte-identically to a scalar campaign.
4. **Golden re-convergence early exit**: peeled trials carry a
   :class:`~repro.ir.interp.ConvergenceIndex`; once all faults are applied
   a trial whose state matches the golden state at a snapshot boundary is
   finished immediately with the golden final result (masked faults stop
   costing a full program suffix).

Each step preserves the determinism contract: faults are pre-drawn in
trial order from the untouched per-shard RNG stream, peel-off runs are the
scalar path itself, and the convergence exit returns exactly the
:class:`RunResult` a full replay would have produced — so a batched
campaign's :class:`~repro.faults.injector.CampaignResult` is bit-identical
to scalar and interp runs (asserted across the workload x scheme x fault
model matrix in ``tests/test_batch.py``).  See ``docs/performance.md``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ir.interp import (
    ConvergenceIndex,
    FaultSpec,
    Interpreter,
    RunResult,
    Snapshot,
    TraceGuide,
)
from repro.sim.compiled import TraceAdvancer


@dataclass(frozen=True)
class TrialPlan:
    """One planned trial: its shard-local index and pre-drawn faults."""

    index: int
    faults: tuple[FaultSpec, ...]

    @property
    def first_dyn(self) -> int:
        return min(f.dyn_index for f in self.faults)


@dataclass(frozen=True)
class BatchGroup:
    """Trials sharing a golden snapshot bucket, sorted by fault position.

    ``snap_index`` is an index into the injector's snapshot list, or ``-1``
    for the reset-state bucket (faults before the first snapshot, or
    campaigns running without snapshots).
    """

    snap_index: int
    trials: tuple[TrialPlan, ...]


@dataclass
class GroupStats:
    """What one batched shard amortized (feeds ``campaign.batch_*``)."""

    groups: int = 0
    restores: int = 0
    #: Golden-prefix instructions executed once by the shared advance.
    golden_advanced: int = 0
    #: Sum over trials of the prefix each one did *not* re-execute.
    skipped_dyn: int = 0
    #: Trials finished by the golden re-convergence early exit.
    converged: int = 0
    #: Trials peeled off to the scalar path (all of them, by construction).
    peeled: int = 0
    #: Post-fault block visits executed by the trace-guided fast path.
    guided_visits: int = 0


def plan_groups(
    plans: list[TrialPlan], snap_keys: list[int]
) -> list[BatchGroup]:
    """Bucket trials by nearest snapshot at or before their earliest fault.

    A pure function of the trial plans and the snapshot positions — the
    grouping never touches the RNG, so batched and scalar campaigns draw
    identical fault sequences.  Groups are returned in snapshot order and
    trials inside a group in (first fault, trial index) order, which makes
    the shared prefix advance strictly forward.
    """
    buckets: dict[int, list[TrialPlan]] = {}
    for plan in plans:
        i = bisect_right(snap_keys, plan.first_dyn) - 1 if snap_keys else -1
        buckets.setdefault(i, []).append(plan)
    return [
        BatchGroup(
            snap_index=i,
            trials=tuple(
                sorted(buckets[i], key=lambda t: (t.first_dyn, t.index))
            ),
        )
        for i in sorted(buckets)
    ]


class BatchRunner:
    """Run planned trial groups against one profiled golden execution.

    Built once per :class:`~repro.faults.injector.FaultInjector` (lazily,
    on the first batched shard) from the injector's golden run, snapshot
    list and visit table; stateless across shards apart from the shared
    interpreter whose state every run resets or restores anyway.
    """

    def __init__(
        self,
        interp: Interpreter,
        golden: RunResult,
        snapshots: list[Snapshot],
        visit_dyn_start: np.ndarray,
        max_steps: int,
        converge: ConvergenceIndex | None = None,
    ) -> None:
        self.interp = interp
        self.golden = golden
        self.snapshots = snapshots
        self.snap_keys = [s.dyn for s in snapshots]
        self._visit_dyn_start = visit_dyn_start
        self.max_steps = max_steps
        self._trace = golden.block_trace
        self._advancer = TraceAdvancer(interp, golden.block_trace)
        # An owner that rebuilds runners (e.g. an injector whose batch
        # runner is recreated) can pass its ConvergenceIndex handle so the
        # per-snapshot state hashing is paid once, not per rebuild.
        self._converge = (
            converge
            if converge is not None
            else (ConvergenceIndex(snapshots, golden) if snapshots else None)
        )
        # Trace-guided suffix execution needs the fused (compiled) backend;
        # the interp backend stays the plain differential oracle.
        self._guide = (
            TraceGuide(interp, golden, visit_dyn_start, self.snap_keys)
            if interp._fused is not None and golden.block_trace
            else None
        )

    def plan(self, plans: list[TrialPlan]) -> list[BatchGroup]:
        return plan_groups(plans, self.snap_keys)

    def _fork_visit(self, first_dyn: int) -> int:
        """Index of the golden block visit containing the first fault."""
        return int(
            np.searchsorted(self._visit_dyn_start, first_dyn, side="right") - 1
        )

    def run_group(
        self,
        group: BatchGroup,
        emit: Callable[[TrialPlan, RunResult], None],
        stats: GroupStats,
    ) -> None:
        """Advance the shared prefix once, then peel every trial off.

        ``emit(plan, result)`` fires once per trial, in the group's fault
        order; the caller reassembles trial order (outcome counts are
        order-insensitive, latencies are re-sorted by trial index).
        """
        interp = self.interp
        vds = self._visit_dyn_start
        if group.snap_index >= 0:
            snap = self.snapshots[group.snap_index]
            interp.restore(snap)
            cur_visit = int(np.searchsorted(vds, snap.dyn, side="left"))
            start_dyn = snap.dyn
            stats.restores += 1
        else:
            interp.reset_state()
            cur_visit = 0
            start_dyn = 0
        stats.groups += 1

        # Phase 1 — shared advance: walk the golden prefix once, capturing
        # a fork (full architectural state) at each distinct fault block.
        forks: list[tuple[TrialPlan, Snapshot]] = []
        fork: Snapshot | None = None
        for plan in group.trials:
            fv = self._fork_visit(plan.first_dyn)
            if fork is None or fv != cur_visit:
                self._advancer.advance(cur_visit, fv)
                cur_visit = fv
                fork = Snapshot(
                    dyn=int(vds[fv]),
                    label=self._trace[fv],
                    regs=tuple(interp._R),
                    mem=tuple(interp._M),
                    output=tuple(interp._O),
                )
            forks.append((plan, fork))
            stats.skipped_dyn += fork.dyn
        stats.golden_advanced += int(vds[cur_visit]) - start_dyn

        # Phase 2 — divergence peel-off: each trial runs the scalar path
        # from its fork, with the convergence index as its early exit.
        converge = self._converge
        guide = self._guide
        hits0 = converge.hits if converge is not None else 0
        guided0 = guide.visits if guide is not None else 0
        for plan, fork in forks:
            result = interp.run(
                faults=plan.faults,
                max_steps=self.max_steps,
                resume_from=fork,
                converge=converge,
                guide=guide,
            )
            stats.peeled += 1
            emit(plan, result)
        if converge is not None:
            stats.converged += converge.hits - hits0
        if guide is not None:
            stats.guided_visits += guide.visits - guided0

    def run_shard_plans(
        self,
        plans: list[TrialPlan],
        emit: Callable[[TrialPlan, RunResult], None],
    ) -> GroupStats:
        """Plan and run one shard's trials; returns the amortization stats."""
        stats = GroupStats()
        for group in self.plan(plans):
            self.run_group(group, emit, stats)
        return stats
