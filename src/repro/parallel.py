"""Process-pool plumbing for the parallel evaluation engine.

The evaluation workloads — Monte-Carlo fault campaigns and (workload,
scheme, issue-width, delay) sweep grids — are embarrassingly parallel, so
this module provides the pieces everything else builds on:

* :func:`resolve_jobs` — turn a user-facing ``--jobs`` value (``None``,
  ``0`` = all cores, ``N``) into a concrete worker count, honouring the
  ``REPRO_JOBS`` environment variable as the default;
* :func:`plan_shards` — split a trial budget into fixed-size shards.  The
  decomposition depends only on the trial count, **never** on the worker
  count, which is what makes campaign results bit-identical for a given
  seed regardless of ``--jobs`` (each shard owns an RNG stream derived
  from ``(seed, shard_index)``);
* :class:`WorkerPool` — a persistent, lazily spawned process pool that
  stays alive across maps.  Spawning workers and re-importing the world
  in each of them is pure fixed overhead; a campaign's two dispatch waves,
  a sweep following a campaign, or a ``repro serve`` daemon executing many
  jobs all reuse one pool (``pool.reuses`` counts how often that pays).
  Crash/hang semantics are preserved: a broken pool is discarded and
  respawned for the retry round, and the per-task ``timeout`` watchdog
  still SIGKILLs hung workers;
* :func:`parallel_map` — an order-preserving ``map`` with an inline fast
  path, per-result completion callbacks, retries with jittered backoff and
  the hung-worker watchdog.  Inside a ``with WorkerPool(...)`` /
  :func:`ensure_pool` scope it transparently routes onto the ambient pool
  instead of spawning an ephemeral one;
* :func:`worker_cached` — a content-addressed per-process cache for
  worker-resident state (decoded superblocks, golden-run profiles,
  architectural snapshots).  Workers persist across tasks *and maps*, so
  expensive per-(workload, scheme) setup is paid once per worker, not once
  per shard (``pool.worker_cache.{hits,misses}``);
* :class:`PickledOnce` — wraps a payload shared by many tasks so the
  parent serializes the object graph once and every task ships the same
  immutable bytes.

**Worker telemetry.**  When the parent has live telemetry, workers record
into an in-memory *capture* telemetry: spans and metric updates accumulate
locally (one batched payload per task, never a per-trial flush) and travel
back piggybacked on the task result.  The parent rebases the spans onto
its own timeline tagged with the worker's pid — Chrome export then shows
one lane per worker — and folds the metric deltas into its registry, so
worker-merged counters are bit-identical to a serial run's.  Because a
persistent pool can outlive the telemetry state it was spawned under, the
capture mode is re-asserted per task (:func:`_pool_call`), not only at
bootstrap.  Mapped functions never see the payload; unwrapping happens
here.

Workers are separate processes: the mapped function and its tasks must be
module-level / picklable, and results travel back by value.
"""

from __future__ import annotations

import logging
import os
import pickle
import random
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from functools import partial
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.obs.telemetry import absorb_worker_snapshot, get_telemetry

logger = logging.getLogger(__name__)

#: Default jitter fraction applied to retry backoff sleeps: each sleep is
#: stretched by up to this fraction, drawn uniformly, so many clients
#: retrying after a shared failure do not re-arrive in lockstep.
RETRY_JITTER = 0.25

#: Fixed trials-per-shard for fault campaigns.  Part of the determinism
#: contract: changing it changes which RNG stream each trial draws from,
#: so treat it like a cache-version bump.
SHARD_TRIALS = 25


def _cgroup_cpu_quota() -> int | None:
    """CPU limit imposed by the enclosing cgroup, rounded up, or ``None``.

    Containers routinely advertise every host core through ``os.cpu_count``
    while the scheduler caps them far lower; honouring the quota is what
    makes ``--jobs 0`` and the bench harness's ``effective_cores`` honest
    inside CI runners and dev containers.
    """
    try:
        # cgroup v2: "max 100000" or "<quota_us> <period_us>".
        raw = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if raw and raw[0] != "max":
            quota, period = int(raw[0]), int(raw[1]) if len(raw) > 1 else 100_000
            if quota > 0 and period > 0:
                return max(1, -(-quota // period))
    except (OSError, ValueError, IndexError):
        pass
    try:
        # cgroup v1.
        quota = int(Path("/sys/fs/cgroup/cpu/cpu.cfs_quota_us").read_text())
        period = int(Path("/sys/fs/cgroup/cpu/cpu.cfs_period_us").read_text())
        if quota > 0 and period > 0:
            return max(1, -(-quota // period))
    except (OSError, ValueError):
        pass
    return None


def effective_cores() -> int:
    """The number of cores this process can actually use.

    The minimum of the scheduler affinity mask, the cgroup CPU quota and
    ``os.cpu_count()`` — each source alone over-reports in some environment
    (taskset/affinity pinning, containers, plain multi-core boxes).
    """
    candidates = [os.cpu_count() or 1]
    try:
        candidates.append(len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        pass
    quota = _cgroup_cpu_quota()
    if quota is not None:
        candidates.append(quota)
    return max(1, min(candidates))


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a ``--jobs`` value into a concrete worker count (>= 1).

    ``None`` falls back to the ``REPRO_JOBS`` environment variable (itself
    defaulting to 1 — parallelism is always opt-in); ``0`` means "all
    cores"; negative values are rejected.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = effective_cores()
    return max(1, jobs)


def plan_shards(total: int, shard_size: int = SHARD_TRIALS) -> list[int]:
    """Split ``total`` trials into shard sizes: ``[shard_size, ..., rest]``.

    The plan is a pure function of ``total`` (and the fixed shard size) so
    that serial and parallel executions decompose identically.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    full, rest = divmod(total, shard_size)
    plan = [shard_size] * full
    if rest:
        plan.append(rest)
    return plan


def plan_task_groups(
    n_items: int,
    est_item_seconds: float,
    jobs: int,
    min_task_seconds: float = 0.25,
) -> list[range]:
    """Group ``n_items`` work items into contiguous pool-task ranges.

    Each group carries at least ``min_task_seconds`` of estimated work
    (``est_item_seconds`` per item), so that cheap items — batched campaign
    shards take only a few milliseconds — stop paying one IPC round trip
    each.  Grouping is capped at ``ceil(n_items / jobs)`` items per task so
    every worker still gets work.  Like :func:`plan_shards`, the grouping
    only decides *dispatch*: items keep their own identity (RNG stream,
    checkpoint record), so results are bit-identical for any grouping.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if n_items == 0:
        return []
    per = max(1, -(-min_task_seconds // max(est_item_seconds, 1e-9)))
    per = int(min(per, -(-n_items // max(jobs, 1))))
    return [range(i, min(i + per, n_items)) for i in range(0, n_items, per)]


def _pool_bootstrap(
    initializer: Callable[..., None] | None,
    initargs: tuple,
    capture: bool = False,
) -> None:
    """Run in every worker before its first task.

    Telemetry objects forked from the parent share its trace-file handle;
    writing to it from several processes would interleave JSON lines, so
    workers never inherit the parent's sinks.  With ``capture`` on (the
    parent has live telemetry) the worker instead records into an
    in-memory capture telemetry — installed *before* the user initializer
    so expensive per-worker setup (program re-decode, golden-run
    profiling) is visible in the merged trace; its spans ride back with
    the worker's first task result.  A persistent pool can outlive this
    initial choice, so :func:`_pool_call` re-asserts the capture mode at
    every task.
    """
    from repro import obs

    obs.reset()
    if capture:
        obs.configure_worker_capture()
    if initializer is not None:
        initializer(*initargs)


def _noop() -> None:
    """Warm-up task: forces worker spawn so ``pool.spawn_s`` is honest."""
    return None


class _Captured:
    """A task result plus the worker-telemetry payload it carries home."""

    __slots__ = ("result", "snapshot")

    def __init__(self, result: Any, snapshot: dict | None) -> None:
        self.result = result
        self.snapshot = snapshot

    def __getstate__(self):
        return (self.result, self.snapshot)

    def __setstate__(self, state) -> None:
        self.result, self.snapshot = state


def _captured_call(fn: Callable[[Any], Any], task: Any) -> _Captured:
    """Run one task in a worker, attaching the drained telemetry snapshot.

    A failing task discards its partial telemetry instead of letting it
    leak into the next task's payload — retried work must not double-count
    metrics.
    """
    from repro.obs.telemetry import drain_worker_snapshot

    try:
        result = fn(task)
    except BaseException:
        drain_worker_snapshot()
        raise
    return _Captured(result, drain_worker_snapshot())


def _pool_call(fn: Callable[[Any], Any], capture: bool, task: Any) -> Any:
    """Worker-side task wrapper for persistent pools.

    Re-asserts the telemetry capture mode the *current* map decided (a
    long-lived worker may have been spawned under a different one — e.g. a
    serve daemon whose per-job telemetry came and went), then runs the
    task, captured or plain.
    """
    from repro.obs.telemetry import ensure_worker_capture

    ensure_worker_capture(capture)
    if not capture:
        return fn(task)
    return _captured_call(fn, task)


def _kill_pool_workers(pool: ProcessPoolExecutor) -> int:
    """SIGKILL every live worker of ``pool`` (hung workers ignore SIGTERM).

    Reaches into the executor's ``_processes`` map — stable across every
    CPython we support — because the stdlib offers no public way to kill a
    worker that is stuck inside a task.  Returns the number of processes
    signalled; the executor observes the deaths as a broken pool.
    """
    killed = 0
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
            killed += 1
        except (OSError, AttributeError):  # pragma: no cover - already gone
            pass
    return killed


# -- worker-resident state -----------------------------------------------------

#: Per-process content-addressed cache of worker-resident state (LRU).
#: Lives at module level so pool workers — which persist across tasks and
#: maps — amortize expensive builds (program decode, golden profiling,
#: snapshot attach) across everything dispatched to them.
_WORKER_CACHE: OrderedDict[str, Any] = OrderedDict()
_WORKER_CACHE_MAX = 8


def worker_cached(key: str, build: Callable[[], Any]) -> Any:
    """Return the cached value for ``key``, building (and caching) on miss.

    ``key`` must be content-addressed (a digest of everything the built
    value depends on), which makes reuse exact-by-construction: an
    identical key means an identical build.  Hits and misses are exported
    as ``pool.worker_cache.hits`` / ``pool.worker_cache.misses`` — in pool
    workers they ride the capture payload back to the parent registry.
    """
    tel = get_telemetry()
    entry = _WORKER_CACHE.get(key)
    if entry is not None:
        _WORKER_CACHE.move_to_end(key)
        tel.count("pool.worker_cache.hits")
        return entry
    tel.count("pool.worker_cache.misses")
    entry = build()
    _WORKER_CACHE[key] = entry
    while len(_WORKER_CACHE) > _WORKER_CACHE_MAX:
        _WORKER_CACHE.popitem(last=False)
    return entry


def worker_cache_clear() -> None:
    """Drop this process's worker cache (tests; never needed in production)."""
    _WORKER_CACHE.clear()


class PickledOnce:
    """A payload serialized once in the parent, decoded on demand in workers.

    ``parallel_map`` pickles every task independently, so a large object
    graph shared by N tasks would be walked N times.  Wrapping it in
    ``PickledOnce`` pays the traversal once up front; each task then ships
    the same immutable bytes (a memcpy, not a graph walk), and the worker
    decodes only when it actually needs the value — a
    :func:`worker_cached` hit never does.
    """

    __slots__ = ("_blob",)

    def __init__(self, value: Any) -> None:
        self._blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    @property
    def nbytes(self) -> int:
        return len(self._blob)

    def load(self) -> Any:
        return pickle.loads(self._blob)

    def __getstate__(self) -> bytes:
        return self._blob

    def __setstate__(self, blob: bytes) -> None:
        self._blob = blob


# -- the persistent pool -------------------------------------------------------


class WorkerPool:
    """A long-lived process pool reused across maps.

    Workers are spawned lazily on the first :meth:`map` (``pool.spawn_s``
    times the spawn, including one warm-up round trip) and stay alive until
    :meth:`shutdown` — later maps reuse them (``pool.reuses``), which is
    what lets worker-resident state (:func:`worker_cached`) amortize across
    a whole campaign + sweep + serve-job sequence.  A broken or watchdog-
    killed pool is discarded and respawned for the retry round
    (``pool.respawns``); the pool object itself survives any number of
    worker crashes.

    Use as a context manager (``with WorkerPool(4):``) to install it as the
    thread's *ambient* pool: every :func:`parallel_map` in the block routes
    onto it.  :meth:`activate` does the same without tying the pool's
    lifetime to the block — the serve runner holds one pool across jobs.
    Not safe for concurrent maps from multiple threads.
    """

    def __init__(
        self,
        jobs: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self._initializer = initializer
        self._initargs = initargs
        self._pool: ProcessPoolExecutor | None = None
        #: Executor spawns (1 for a pool that never lost a worker).
        self.spawns = 0
        #: Maps served by an already-live executor.
        self.reuses = 0
        #: Respawns forced by a broken / watchdog-killed pool.
        self.respawns = 0

    # -- lifecycle -------------------------------------------------------------
    def _ensure(self, capture: bool) -> ProcessPoolExecutor:
        """The live executor, spawning (and timing the spawn) if needed."""
        if self._pool is not None:
            return self._pool
        tel = get_telemetry()
        t0 = time.perf_counter()
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_pool_bootstrap,
            initargs=(self._initializer, self._initargs, capture),
        )
        # One warm-up round trip: ProcessPoolExecutor forks its workers on
        # first submit, so without this the spawn cost would be silently
        # folded into the first real task's latency.
        self._pool.submit(_noop).result()
        spawn_s = time.perf_counter() - t0
        if self.spawns:
            self.respawns += 1
            tel.count("pool.respawns")
        self.spawns += 1
        tel.count("pool.spawns")
        tel.observe("pool.spawn_s", spawn_s)
        logger.debug(
            "worker pool spawned: %d worker(s) in %.3fs", self.jobs, spawn_s
        )
        return self._pool

    def _discard(self) -> None:
        """Drop the (broken) executor; the next round/map respawns."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def shutdown(self) -> None:
        """Terminate the workers.  The pool can spawn again on a later map."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- ambient installation ----------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        _ambient_stack().append(self)
        return self

    def __exit__(self, *exc: object) -> None:
        stack = _ambient_stack()
        if self in stack:
            stack.remove(self)
        self.shutdown()

    @contextmanager
    def activate(self) -> Iterator["WorkerPool"]:
        """Install as the ambient pool *without* shutting down on exit.

        For owners with a longer lifetime than one scope — the serve
        runner activates its pool around each job and shuts it down once,
        when the daemon stops.
        """
        stack = _ambient_stack()
        stack.append(self)
        try:
            yield self
        finally:
            if self in stack:
                stack.remove(self)

    # -- mapping -----------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        jobs: int | None = None,
        on_result: Callable[[int, Any], None] | None = None,
        retries: int = 0,
        retry_backoff: float = 0.0,
        retry_jitter: float = RETRY_JITTER,
        timeout: float | None = None,
        on_failure: Callable[[int, BaseException], None] | None = None,
    ) -> list[Any]:
        """Order-preserving map over the persistent pool.

        Same contract as :func:`parallel_map` (which documents the failure
        handling and the hung-worker watchdog in full), minus the inline
        fast path: every task runs in a worker.  ``jobs`` only narrows the
        dispatch window below the pool's worker count; it never widens it.

        Backoff between retry rounds is *charged-only*: a round whose
        retries are all uncharged bystanders (collateral of a watchdog
        kill — the task itself did nothing wrong) resubmits immediately
        instead of waiting out an exponential sleep it did not earn.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        window_jobs = min(self.jobs, resolve_jobs(jobs) if jobs else self.jobs)
        results: list[Any] = [None] * len(tasks)

        tel = get_telemetry()
        capture = tel.enabled
        call: Callable[[Any], Any] = partial(_pool_call, fn, capture)
        if self._pool is not None:
            self.reuses += 1
            tel.count("pool.reuses")

        def settle(i: int, outcome: Any) -> None:
            """Record one successful task result (unwrapping captured payloads)."""
            if isinstance(outcome, _Captured):
                absorb_worker_snapshot(outcome.snapshot, tel)
                outcome = outcome.result
            results[i] = outcome
            if on_result is not None:
                on_result(i, outcome)

        def exhaust(i: int, attempt: int, exc: BaseException) -> bool:
            """Requeue (False) or finalize the failure (True)."""
            if attempt < retries:
                return False
            if on_failure is None:
                raise exc
            logger.warning(
                "task %d failed after %d attempt(s): %s", i, attempt + 1, exc
            )
            on_failure(i, exc)
            return True

        pending: list[tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
        backoff_round = 0
        sleep_before_next = False
        while pending:
            if sleep_before_next and retry_backoff > 0:
                backoff_round += 1
                sleep_s = retry_backoff * (2 ** (backoff_round - 1))
                if retry_jitter > 0:
                    sleep_s *= 1.0 + random.uniform(0.0, retry_jitter)
                time.sleep(sleep_s)
            this_round, pending = pending, []
            charged = False
            broken = False
            hung: set = set()
            pool = self._ensure(capture)
            try:
                queue = deque(this_round)
                # With no deadline, submit everything upfront (the
                # historical behaviour).  With one, dispatch in a window of
                # ``jobs`` so a task's clock starts roughly when a worker
                # can run it.
                window = (
                    len(this_round)
                    if timeout is None
                    else min(window_jobs, len(this_round))
                )
                future_of: dict = {}
                deadline_of: dict = {}

                def submit_next():
                    i, attempt = queue.popleft()
                    future = pool.submit(call, tasks[i])
                    future_of[future] = (i, attempt)
                    if timeout is not None:
                        deadline_of[future] = time.monotonic() + timeout
                    return future

                not_done = {submit_next() for _ in range(window)}
                while not_done:
                    if timeout is not None:
                        budget = max(
                            0.0,
                            min(deadline_of[f] for f in not_done)
                            - time.monotonic(),
                        )
                        done, not_done = wait(
                            not_done, timeout=budget, return_when=FIRST_COMPLETED
                        )
                    else:
                        done, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                    for future in done:
                        i, attempt = future_of[future]
                        try:
                            result = future.result()
                        except BrokenProcessPool as exc:
                            broken = True
                            if not exhaust(i, attempt, exc):
                                pending.append((i, attempt + 1))
                                charged = True
                        except Exception as exc:
                            if not exhaust(i, attempt, exc):
                                pending.append((i, attempt + 1))
                                charged = True
                        else:
                            settle(i, result)
                    if timeout is not None and not broken:
                        now = time.monotonic()
                        hung = {f for f in not_done if now >= deadline_of[f]}
                        if hung:
                            # Presumed-hung workers: kill the pool and sort
                            # the wreckage below — overdue tasks are charged
                            # a timeout attempt, bystanders retry for free.
                            broken = True
                            for future in hung:
                                i, _ = future_of[future]
                                logger.warning(
                                    "task %d exceeded its %.1fs deadline; "
                                    "killing its worker pool", i, timeout,
                                )
                            _kill_pool_workers(pool)
                    if broken:
                        # The executor is unusable; every unfinished future
                        # has (or will get) BrokenProcessPool.  Drain them
                        # all and fall through to a respawned pool for the
                        # requeued tasks.
                        wait(not_done)
                        for future in not_done:
                            i, attempt = future_of[future]
                            if future in hung:
                                try:
                                    result = future.result()
                                except BaseException:  # noqa: BLE001
                                    texc = TimeoutError(
                                        f"task {i} exceeded its {timeout:.1f}s "
                                        "deadline and its worker was killed"
                                    )
                                    if not exhaust(i, attempt, texc):
                                        pending.append((i, attempt + 1))
                                        charged = True
                                else:
                                    # Finished in the race window before the
                                    # kill landed: keep the honest result.
                                    settle(i, result)
                                continue
                            try:
                                result = future.result()
                            except BaseException as exc:  # noqa: BLE001
                                if hung:
                                    # Collateral of our own watchdog kill:
                                    # the task did nothing wrong, retry
                                    # uncharged.
                                    pending.append((i, attempt))
                                elif not exhaust(i, attempt, exc):
                                    pending.append((i, attempt + 1))
                                    charged = True
                            else:
                                settle(i, result)
                        not_done = set()
                        # Never-dispatched tasks carry over untouched.
                        pending.extend(queue)
                        queue.clear()
                    elif queue:
                        while queue and len(not_done) < window:
                            not_done.add(submit_next())
            except BaseException:
                if broken:
                    self._discard()
                raise
            if broken:
                self._discard()
            # Bystander-only rounds skip the backoff entirely: the sleep
            # exists to space out *failing* work, and nothing in the next
            # round failed.
            sleep_before_next = charged
        return results


# -- ambient pool ------------------------------------------------------------

_AMBIENT = threading.local()


def _ambient_stack() -> list[WorkerPool]:
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = _AMBIENT.stack = []
    return stack


def current_pool() -> WorkerPool | None:
    """The innermost ambient :class:`WorkerPool` of this thread, if any."""
    stack = getattr(_AMBIENT, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def ensure_pool(jobs: int | None = None) -> Iterator[WorkerPool | None]:
    """An ambient pool for the block: reuse the current one or own a new one.

    The reuse-or-create idiom every multi-map driver wants: ``run_campaign``
    wraps its dispatch waves in ``ensure_pool(jobs)`` so they share one
    spawn, and when the CLI (or the serve runner) already installed a
    longer-lived pool the campaign transparently borrows it instead.
    Yields ``None`` without creating anything when ``jobs`` resolves to 1 —
    serial execution stays process-pool-free.  A newly created pool spawns
    lazily (on the first real map) and is shut down on exit; a borrowed one
    is left untouched.
    """
    if resolve_jobs(jobs) <= 1:
        yield None
        return
    pool = current_pool()
    if pool is not None:
        yield pool
        return
    with WorkerPool(jobs) as pool:
        yield pool


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int | None = 1,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    on_result: Callable[[int, Any], None] | None = None,
    retries: int = 0,
    retry_backoff: float = 0.0,
    retry_jitter: float = RETRY_JITTER,
    timeout: float | None = None,
    on_failure: Callable[[int, BaseException], None] | None = None,
) -> list[Any]:
    """Map ``fn`` over ``tasks``, preserving task order in the result list.

    With ``jobs <= 1`` (or fewer than two tasks and no ambient pool)
    everything runs inline in the calling process and ``initializer`` is
    **not** invoked — inline callers must not rely on worker-only globals.
    Otherwise tasks are distributed over a process pool: the thread's
    ambient :class:`WorkerPool` when one is installed (and no
    ``initializer`` is requested — per-spawn initializers cannot apply to
    already-running workers), else an ephemeral pool torn down when the map
    returns.

    ``on_result(index, result)`` fires as each task finishes (completion
    order, not task order) — the hook the campaign and sweep drivers use to
    aggregate cross-worker progress into one
    :class:`~repro.obs.progress.ProgressTracker`.

    **Failure handling.**  A task attempt fails when ``fn`` raises or when
    its worker process dies (``BrokenProcessPool`` — an OOM kill, a signal,
    a segfaulting extension).  Each task is retried up to ``retries`` extra
    times, waiting ``retry_backoff * 2**(round-1)`` seconds between charged
    rounds — exponential, stretched by up to ``retry_jitter`` of itself
    (drawn uniformly) so synchronized failures do not retry in lockstep; a
    dead pool is respawned and the unfinished tasks resubmitted to fresh
    workers.  A worker death cannot be attributed to one task exactly, so a
    pool crash charges an attempt to *every* task that was in flight:
    transient crashes retry everything cleanly, while a deterministically
    crashing task exhausts its budget after at most ``retries + 1`` pool
    rebuilds.  After exhaustion the task's slot stays ``None`` and
    ``on_failure(index, exc)`` is invoked; with no ``on_failure`` the
    exception propagates (the pre-existing fail-fast contract, the
    default).

    **Hung workers.**  ``timeout`` arms a per-task deadline (seconds): a
    task still running past it is presumed *hung* — not dead, so
    ``BrokenProcessPool`` never fires — and its whole pool is SIGKILLed.
    The overdue task is charged a :class:`TimeoutError` attempt and retried
    like a crash; in-flight tasks that were merely sharing the pool are
    resubmitted without losing an attempt *and* without waiting out a
    backoff they did not earn.  With a timeout armed, tasks are dispatched
    in a sliding window of ``jobs`` so the clock starts when a worker can
    actually pick the task up, not when the map began.  Inline execution
    (``jobs <= 1``) cannot preempt a hung call; the timeout only protects
    pool mode.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    ambient = current_pool() if initializer is None else None
    if jobs <= 1 or (len(tasks) <= 1 and ambient is None):
        results = []
        for i, task in enumerate(tasks):
            try:
                result = fn(task)
            except Exception as exc:
                # Inline attempts are deterministic: retrying in-process
                # would fail identically, so exhaust the budget directly.
                if on_failure is None:
                    raise
                logger.warning("task %d failed inline: %s", i, exc)
                on_failure(i, exc)
                results.append(None)
                continue
            if on_result is not None:
                on_result(i, result)
            results.append(result)
        return results

    if ambient is not None:
        return ambient.map(
            fn, tasks, jobs=jobs, on_result=on_result, retries=retries,
            retry_backoff=retry_backoff, retry_jitter=retry_jitter,
            timeout=timeout, on_failure=on_failure,
        )
    ephemeral = WorkerPool(
        min(jobs, len(tasks)), initializer=initializer, initargs=initargs
    )
    try:
        return ephemeral.map(
            fn, tasks, on_result=on_result, retries=retries,
            retry_backoff=retry_backoff, retry_jitter=retry_jitter,
            timeout=timeout, on_failure=on_failure,
        )
    finally:
        ephemeral.shutdown()
