"""Process-pool plumbing for the parallel evaluation engine.

The evaluation workloads — Monte-Carlo fault campaigns and (workload,
scheme, issue-width, delay) sweep grids — are embarrassingly parallel, so
this module provides the three small pieces everything else builds on:

* :func:`resolve_jobs` — turn a user-facing ``--jobs`` value (``None``,
  ``0`` = all cores, ``N``) into a concrete worker count, honouring the
  ``REPRO_JOBS`` environment variable as the default;
* :func:`plan_shards` — split a trial budget into fixed-size shards.  The
  decomposition depends only on the trial count, **never** on the worker
  count, which is what makes campaign results bit-identical for a given
  seed regardless of ``--jobs`` (each shard owns an RNG stream derived
  from ``(seed, shard_index)``);
* :func:`parallel_map` — an order-preserving ``map`` over a
  ``ProcessPoolExecutor`` with an inline fast path, per-result completion
  callbacks (for cross-worker progress aggregation), and worker
  bootstrapping that disables the parent's telemetry sinks (a forked
  trace-file handle would interleave writes from every process).

Workers are separate processes: the mapped function and its tasks must be
module-level / picklable, and results travel back by value.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Sequence

#: Fixed trials-per-shard for fault campaigns.  Part of the determinism
#: contract: changing it changes which RNG stream each trial draws from,
#: so treat it like a cache-version bump.
SHARD_TRIALS = 25


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a ``--jobs`` value into a concrete worker count (>= 1).

    ``None`` falls back to the ``REPRO_JOBS`` environment variable (itself
    defaulting to 1 — parallelism is always opt-in); ``0`` means "all
    cores"; negative values are rejected.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def plan_shards(total: int, shard_size: int = SHARD_TRIALS) -> list[int]:
    """Split ``total`` trials into shard sizes: ``[shard_size, ..., rest]``.

    The plan is a pure function of ``total`` (and the fixed shard size) so
    that serial and parallel executions decompose identically.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    full, rest = divmod(total, shard_size)
    plan = [shard_size] * full
    if rest:
        plan.append(rest)
    return plan


def _pool_bootstrap(initializer: Callable[..., None] | None, initargs: tuple) -> None:
    """Run in every worker before its first task.

    Telemetry objects forked from the parent share its trace-file handle;
    writing to it from several processes would interleave JSON lines, so
    workers always start with telemetry disabled.
    """
    from repro import obs

    obs.reset()
    if initializer is not None:
        initializer(*initargs)


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int | None = 1,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Map ``fn`` over ``tasks``, preserving task order in the result list.

    With ``jobs <= 1`` (or fewer than two tasks) everything runs inline in
    the calling process and ``initializer`` is **not** invoked — inline
    callers must not rely on worker-only globals.  Otherwise tasks are
    distributed over a :class:`ProcessPoolExecutor` of
    ``min(jobs, len(tasks))`` workers.

    ``on_result(index, result)`` fires as each task finishes (completion
    order, not task order) — the hook the campaign and sweep drivers use to
    aggregate cross-worker progress into one
    :class:`~repro.obs.progress.ProgressTracker`.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for i, task in enumerate(tasks):
            result = fn(task)
            if on_result is not None:
                on_result(i, result)
            results.append(result)
        return results

    results: list[Any] = [None] * len(tasks)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_pool_bootstrap,
        initargs=(initializer, initargs),
    ) as pool:
        pending = {pool.submit(fn, task): i for i, task in enumerate(tasks)}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                i = pending.pop(future)
                result = future.result()  # propagate worker exceptions
                results[i] = result
                if on_result is not None:
                    on_result(i, result)
    return results
