"""Process-pool plumbing for the parallel evaluation engine.

The evaluation workloads — Monte-Carlo fault campaigns and (workload,
scheme, issue-width, delay) sweep grids — are embarrassingly parallel, so
this module provides the three small pieces everything else builds on:

* :func:`resolve_jobs` — turn a user-facing ``--jobs`` value (``None``,
  ``0`` = all cores, ``N``) into a concrete worker count, honouring the
  ``REPRO_JOBS`` environment variable as the default;
* :func:`plan_shards` — split a trial budget into fixed-size shards.  The
  decomposition depends only on the trial count, **never** on the worker
  count, which is what makes campaign results bit-identical for a given
  seed regardless of ``--jobs`` (each shard owns an RNG stream derived
  from ``(seed, shard_index)``);
* :func:`parallel_map` — an order-preserving ``map`` over a
  ``ProcessPoolExecutor`` with an inline fast path, per-result completion
  callbacks (for cross-worker progress aggregation), worker bootstrapping
  that disables the parent's telemetry sinks (a forked trace-file handle
  would interleave writes from every process), and optional crash
  resilience: a task whose worker dies is retried with backoff on a fresh
  pool, and after exhausting its retry budget the failure is reported to
  ``on_failure`` instead of aborting the whole map.

**Worker telemetry.**  When the parent has live telemetry, workers are
bootstrapped with an in-memory *capture* telemetry instead of none: spans
and metric updates accumulate locally (one batched payload per task, never
a per-trial flush) and travel back piggybacked on the task result.  The
parent rebases the spans onto its own timeline tagged with the worker's
pid — Chrome export then shows one lane per worker — and folds the metric
deltas into its registry, so worker-merged counters are bit-identical to a
serial run's.  Mapped functions never see the payload; unwrapping happens
here.

Workers are separate processes: the mapped function and its tasks must be
module-level / picklable, and results travel back by value.
"""

from __future__ import annotations

import logging
import os
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Any, Callable, Sequence

from repro.obs.telemetry import absorb_worker_snapshot, get_telemetry

logger = logging.getLogger(__name__)

#: Default jitter fraction applied to retry backoff sleeps: each sleep is
#: stretched by up to this fraction, drawn uniformly, so many clients
#: retrying after a shared failure do not re-arrive in lockstep.
RETRY_JITTER = 0.25

#: Fixed trials-per-shard for fault campaigns.  Part of the determinism
#: contract: changing it changes which RNG stream each trial draws from,
#: so treat it like a cache-version bump.
SHARD_TRIALS = 25


def _cgroup_cpu_quota() -> int | None:
    """CPU limit imposed by the enclosing cgroup, rounded up, or ``None``.

    Containers routinely advertise every host core through ``os.cpu_count``
    while the scheduler caps them far lower; honouring the quota is what
    makes ``--jobs 0`` and the bench harness's ``effective_cores`` honest
    inside CI runners and dev containers.
    """
    try:
        # cgroup v2: "max 100000" or "<quota_us> <period_us>".
        raw = open("/sys/fs/cgroup/cpu.max").read().split()
        if raw and raw[0] != "max":
            quota, period = int(raw[0]), int(raw[1]) if len(raw) > 1 else 100_000
            if quota > 0 and period > 0:
                return max(1, -(-quota // period))
    except (OSError, ValueError, IndexError):
        pass
    try:
        # cgroup v1.
        quota = int(open("/sys/fs/cgroup/cpu/cpu.cfs_quota_us").read())
        period = int(open("/sys/fs/cgroup/cpu/cpu.cfs_period_us").read())
        if quota > 0 and period > 0:
            return max(1, -(-quota // period))
    except (OSError, ValueError):
        pass
    return None


def effective_cores() -> int:
    """The number of cores this process can actually use.

    The minimum of the scheduler affinity mask, the cgroup CPU quota and
    ``os.cpu_count()`` — each source alone over-reports in some environment
    (taskset/affinity pinning, containers, plain multi-core boxes).
    """
    candidates = [os.cpu_count() or 1]
    try:
        candidates.append(len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        pass
    quota = _cgroup_cpu_quota()
    if quota is not None:
        candidates.append(quota)
    return max(1, min(candidates))


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a ``--jobs`` value into a concrete worker count (>= 1).

    ``None`` falls back to the ``REPRO_JOBS`` environment variable (itself
    defaulting to 1 — parallelism is always opt-in); ``0`` means "all
    cores"; negative values are rejected.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = effective_cores()
    return max(1, jobs)


def plan_shards(total: int, shard_size: int = SHARD_TRIALS) -> list[int]:
    """Split ``total`` trials into shard sizes: ``[shard_size, ..., rest]``.

    The plan is a pure function of ``total`` (and the fixed shard size) so
    that serial and parallel executions decompose identically.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    full, rest = divmod(total, shard_size)
    plan = [shard_size] * full
    if rest:
        plan.append(rest)
    return plan


def plan_task_groups(
    n_items: int,
    est_item_seconds: float,
    jobs: int,
    min_task_seconds: float = 0.25,
) -> list[range]:
    """Group ``n_items`` work items into contiguous pool-task ranges.

    Each group carries at least ``min_task_seconds`` of estimated work
    (``est_item_seconds`` per item), so that cheap items — batched campaign
    shards take only a few milliseconds — stop paying one IPC round trip
    each.  Grouping is capped at ``ceil(n_items / jobs)`` items per task so
    every worker still gets work.  Like :func:`plan_shards`, the grouping
    only decides *dispatch*: items keep their own identity (RNG stream,
    checkpoint record), so results are bit-identical for any grouping.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if n_items == 0:
        return []
    per = max(1, -(-min_task_seconds // max(est_item_seconds, 1e-9)))
    per = int(min(per, -(-n_items // max(jobs, 1))))
    return [range(i, min(i + per, n_items)) for i in range(0, n_items, per)]


def _pool_bootstrap(
    initializer: Callable[..., None] | None,
    initargs: tuple,
    capture: bool = False,
) -> None:
    """Run in every worker before its first task.

    Telemetry objects forked from the parent share its trace-file handle;
    writing to it from several processes would interleave JSON lines, so
    workers never inherit the parent's sinks.  With ``capture`` on (the
    parent has live telemetry) the worker instead records into an
    in-memory capture telemetry — installed *before* the user initializer
    so expensive per-worker setup (program re-decode, golden-run
    profiling) is visible in the merged trace; its spans ride back with
    the worker's first task result.
    """
    from repro import obs

    obs.reset()
    if capture:
        obs.configure_worker_capture()
    if initializer is not None:
        initializer(*initargs)


class _Captured:
    """A task result plus the worker-telemetry payload it carries home."""

    __slots__ = ("result", "snapshot")

    def __init__(self, result: Any, snapshot: dict | None) -> None:
        self.result = result
        self.snapshot = snapshot

    def __getstate__(self):
        return (self.result, self.snapshot)

    def __setstate__(self, state) -> None:
        self.result, self.snapshot = state


def _captured_call(fn: Callable[[Any], Any], task: Any) -> _Captured:
    """Run one task in a worker, attaching the drained telemetry snapshot.

    A failing task discards its partial telemetry instead of letting it
    leak into the next task's payload — retried work must not double-count
    metrics.
    """
    from repro.obs.telemetry import drain_worker_snapshot

    try:
        result = fn(task)
    except BaseException:
        drain_worker_snapshot()
        raise
    return _Captured(result, drain_worker_snapshot())


def _kill_pool_workers(pool: ProcessPoolExecutor) -> int:
    """SIGKILL every live worker of ``pool`` (hung workers ignore SIGTERM).

    Reaches into the executor's ``_processes`` map — stable across every
    CPython we support — because the stdlib offers no public way to kill a
    worker that is stuck inside a task.  Returns the number of processes
    signalled; the executor observes the deaths as a broken pool.
    """
    killed = 0
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
            killed += 1
        except (OSError, AttributeError):  # pragma: no cover - already gone
            pass
    return killed


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int | None = 1,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    on_result: Callable[[int, Any], None] | None = None,
    retries: int = 0,
    retry_backoff: float = 0.0,
    retry_jitter: float = RETRY_JITTER,
    timeout: float | None = None,
    on_failure: Callable[[int, BaseException], None] | None = None,
) -> list[Any]:
    """Map ``fn`` over ``tasks``, preserving task order in the result list.

    With ``jobs <= 1`` (or fewer than two tasks) everything runs inline in
    the calling process and ``initializer`` is **not** invoked — inline
    callers must not rely on worker-only globals.  Otherwise tasks are
    distributed over a :class:`ProcessPoolExecutor` of
    ``min(jobs, len(tasks))`` workers.

    ``on_result(index, result)`` fires as each task finishes (completion
    order, not task order) — the hook the campaign and sweep drivers use to
    aggregate cross-worker progress into one
    :class:`~repro.obs.progress.ProgressTracker`.

    **Failure handling.**  A task attempt fails when ``fn`` raises or when
    its worker process dies (``BrokenProcessPool`` — an OOM kill, a signal,
    a segfaulting extension).  Each task is retried up to ``retries`` extra
    times, waiting ``retry_backoff * 2**(round-1)`` seconds between rounds
    — exponential, stretched by up to ``retry_jitter`` of itself (drawn
    uniformly) so synchronized failures do not retry in lockstep; a dead
    pool is rebuilt and the unfinished tasks resubmitted to fresh workers.
    A worker death cannot be attributed to one task exactly, so a pool
    crash charges an attempt to *every* task that was in flight: transient
    crashes retry everything cleanly, while a deterministically crashing
    task exhausts its budget after at most ``retries + 1`` pool rebuilds.
    After exhaustion the task's slot stays ``None`` and ``on_failure(index,
    exc)`` is invoked; with no ``on_failure`` the exception propagates
    (the pre-existing fail-fast contract, the default).

    **Hung workers.**  ``timeout`` arms a per-task deadline (seconds): a
    task still running past it is presumed *hung* — not dead, so
    ``BrokenProcessPool`` never fires — and its whole pool is SIGKILLed.
    The overdue task is charged a :class:`TimeoutError` attempt and retried
    like a crash; in-flight tasks that were merely sharing the pool are
    resubmitted without losing an attempt.  With a timeout armed, tasks are
    dispatched in a sliding window of ``jobs`` so the clock starts when a
    worker can actually pick the task up, not when the map began.  Inline
    execution (``jobs <= 1``) cannot preempt a hung call; the timeout only
    protects pool mode.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for i, task in enumerate(tasks):
            try:
                result = fn(task)
            except Exception as exc:
                # Inline attempts are deterministic: retrying in-process
                # would fail identically, so exhaust the budget directly.
                if on_failure is None:
                    raise
                logger.warning("task %d failed inline: %s", i, exc)
                on_failure(i, exc)
                results.append(None)
                continue
            if on_result is not None:
                on_result(i, result)
            results.append(result)
        return results

    results: list[Any] = [None] * len(tasks)

    # Worker telemetry: capture in workers only when the parent can absorb
    # it.  The mapped function is wrapped once; completion paths unwrap.
    tel = get_telemetry()
    capture = tel.enabled
    call: Callable[[Any], Any] = partial(_captured_call, fn) if capture else fn

    def settle(i: int, outcome: Any) -> None:
        """Record one successful task result (unwrapping captured payloads)."""
        if isinstance(outcome, _Captured):
            absorb_worker_snapshot(outcome.snapshot, tel)
            outcome = outcome.result
        results[i] = outcome
        if on_result is not None:
            on_result(i, outcome)

    def exhaust(i: int, attempt: int, exc: BaseException) -> bool:
        """Requeue (False) or finalize the failure (True)."""
        if attempt < retries:
            return False
        if on_failure is None:
            raise exc
        logger.warning(
            "task %d failed after %d attempt(s): %s", i, attempt + 1, exc
        )
        on_failure(i, exc)
        return True

    pending: list[tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
    round_no = 0
    while pending:
        if round_no and retry_backoff > 0:
            sleep_s = retry_backoff * (2 ** (round_no - 1))
            if retry_jitter > 0:
                sleep_s *= 1.0 + random.uniform(0.0, retry_jitter)
            time.sleep(sleep_s)
        round_no += 1
        this_round, pending = pending, []
        broken = False
        hung: set = set()
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(this_round)),
            initializer=_pool_bootstrap,
            initargs=(initializer, initargs, capture),
        ) as pool:
            queue = deque(this_round)
            # With no deadline, submit everything upfront (the historical
            # behaviour).  With one, dispatch in a window of ``jobs`` so a
            # task's clock starts roughly when a worker can run it.
            window = len(this_round) if timeout is None else min(jobs, len(this_round))
            future_of: dict = {}
            deadline_of: dict = {}

            def submit_next():
                i, attempt = queue.popleft()
                future = pool.submit(call, tasks[i])
                future_of[future] = (i, attempt)
                if timeout is not None:
                    deadline_of[future] = time.monotonic() + timeout
                return future

            not_done = {submit_next() for _ in range(window)}
            while not_done:
                if timeout is not None:
                    budget = max(
                        0.0,
                        min(deadline_of[f] for f in not_done) - time.monotonic(),
                    )
                    done, not_done = wait(
                        not_done, timeout=budget, return_when=FIRST_COMPLETED
                    )
                else:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    i, attempt = future_of[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        if not exhaust(i, attempt, exc):
                            pending.append((i, attempt + 1))
                    except Exception as exc:
                        if not exhaust(i, attempt, exc):
                            pending.append((i, attempt + 1))
                    else:
                        settle(i, result)
                if timeout is not None and not broken:
                    now = time.monotonic()
                    hung = {f for f in not_done if now >= deadline_of[f]}
                    if hung:
                        # Presumed-hung workers: kill the pool and sort the
                        # wreckage below — overdue tasks are charged a
                        # timeout attempt, bystanders retry for free.
                        broken = True
                        for future in hung:
                            i, _ = future_of[future]
                            logger.warning(
                                "task %d exceeded its %.1fs deadline; "
                                "killing its worker pool", i, timeout,
                            )
                        _kill_pool_workers(pool)
                if broken:
                    # The executor is unusable; every unfinished future has
                    # (or will get) BrokenProcessPool.  Drain them all and
                    # fall through to a fresh pool for the requeued tasks.
                    wait(not_done)
                    for future in not_done:
                        i, attempt = future_of[future]
                        if future in hung:
                            try:
                                result = future.result()
                            except BaseException:  # noqa: BLE001
                                texc = TimeoutError(
                                    f"task {i} exceeded its {timeout:.1f}s "
                                    "deadline and its worker was killed"
                                )
                                if not exhaust(i, attempt, texc):
                                    pending.append((i, attempt + 1))
                            else:
                                # Finished in the race window before the
                                # kill landed: keep the honest result.
                                settle(i, result)
                            continue
                        try:
                            result = future.result()
                        except BaseException as exc:  # noqa: BLE001
                            if hung:
                                # Collateral of our own watchdog kill: the
                                # task did nothing wrong, retry uncharged.
                                pending.append((i, attempt))
                            elif not exhaust(i, attempt, exc):
                                pending.append((i, attempt + 1))
                        else:
                            settle(i, result)
                    not_done = set()
                    # Never-dispatched tasks carry over untouched.
                    pending.extend(queue)
                    queue.clear()
                elif queue:
                    while queue and len(not_done) < window:
                        not_done.add(submit_next())
    return results
