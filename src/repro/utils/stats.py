"""Statistics helpers used by the evaluation harness.

The paper reports arithmetic-mean slowdowns and Monte-Carlo category
fractions; we additionally expose geometric means (the customary benchmark
aggregate) and normal-approximation confidence intervals for the coverage
fractions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty input."""
    vals = list(values)
    if not vals:
        raise ValueError("mean() of empty sequence")
    return sum(vals) / len(vals)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean() of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean() requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def confidence_interval_95(successes: int, trials: int) -> tuple[float, float]:
    """95% Wilson score interval for a binomial proportion.

    Used to decide whether two fault-coverage fractions are statistically
    indistinguishable (the paper attributes cross-configuration variation to
    "statistical deviation").
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = 1.959963984540054
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


def two_proportion_z(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> tuple[float, bool]:
    """Two-proportion z-test: (z statistic, significant at 95%?).

    Used to check the paper's Fig. 9/10 claim quantitatively: the coverage
    of SCED/DCED/CASTED, and of one scheme across machine configurations,
    should NOT differ significantly (the observed variation is Monte-Carlo
    noise).
    """
    if trials_a <= 0 or trials_b <= 0:
        raise ValueError("trials must be positive")
    if not (0 <= successes_a <= trials_a and 0 <= successes_b <= trials_b):
        raise ValueError("successes out of range")
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    denom = pooled * (1 - pooled) * (1 / trials_a + 1 / trials_b)
    if denom == 0:
        return (0.0, False)
    z = (p_a - p_b) / math.sqrt(denom)
    return (z, abs(z) > 1.959963984540054)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    geomean: float | None
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        gm = f"{self.geomean:.3f}" if self.geomean is not None else "n/a"
        return (
            f"n={self.n} mean={self.mean:.3f} geomean={gm} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a sample (geomean omitted when values are not all positive)."""
    if not values:
        raise ValueError("summarize() of empty sequence")
    gm = geomean(values) if all(v > 0 for v in values) else None
    return Summary(
        n=len(values),
        mean=mean(values),
        geomean=gm,
        minimum=min(values),
        maximum=max(values),
    )
