"""Deterministic random-number plumbing.

Every stochastic component in the package (fault injection above all) takes an
explicit integer seed.  ``derive_seed`` deterministically mixes a parent seed
with a sequence of labels so independent sub-experiments get independent,
reproducible streams regardless of execution order.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(parent: int, *labels: object) -> int:
    """Derive a child seed from ``parent`` and an arbitrary label path.

    The derivation is stable across processes and Python versions (it uses
    SHA-256, not ``hash``).  Labels are joined by their ``repr``.
    """
    h = hashlib.sha256()
    h.update(str(int(parent)).encode())
    for label in labels:
        h.update(b"/")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def make_rng(seed: int, *labels: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed`` + label path."""
    return np.random.default_rng(derive_seed(seed, *labels) if labels else int(seed))
