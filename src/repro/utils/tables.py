"""Plain-text table rendering for experiment reports.

The benchmark harness regenerates the paper's tables/figures as text; this is
the single formatting routine all of them share.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Cells are stringified with ``str``; numeric-looking columns read better
    right-aligned (the default).  The first column is always left-aligned.
    """
    cells = [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(cells):
        if len(row) != ncols:
            raise ValueError(f"row {i} has {len(row)} cells, expected {ncols}")
    widths = [len(h) for h in headers]
    for row in cells:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(row):
            if j == 0 or not align_right:
                parts.append(cell.ljust(widths[j]))
            else:
                parts.append(cell.rjust(widths[j]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)
