"""Small shared utilities: deterministic RNG, statistics, ASCII tables."""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.stats import (
    confidence_interval_95,
    geomean,
    mean,
    summarize,
)
from repro.utils.tables import format_table

__all__ = [
    "derive_seed",
    "make_rng",
    "geomean",
    "mean",
    "confidence_interval_95",
    "summarize",
    "format_table",
]
